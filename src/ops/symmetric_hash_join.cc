#include "ops/symmetric_hash_join.h"

#include <algorithm>
#include <cassert>

#include "core/propagation.h"
#include "ops/shard_routing.h"
#include "punct/compiled_pattern.h"
#include "recovery/snapshot.h"

namespace nstream {

SymmetricHashJoin::SymmetricHashJoin(std::string name, JoinOptions options)
    : Operator(std::move(name), 2, 1), options_(std::move(options)) {}

Status SymmetricHashJoin::InferSchemas() {
  const Schema& left = *input_schema(0);
  const Schema& right = *input_schema(1);
  left_arity_ = left.num_fields();
  right_arity_ = right.num_fields();
  if (options_.left_keys.size() != options_.right_keys.size()) {
    return Status::InvalidArgument(name() + ": key arity mismatch");
  }
  if (options_.shard_count < 1 || options_.shard_index < 0 ||
      options_.shard_index >= options_.shard_count) {
    return Status::InvalidArgument(
        name() + ": shard_index must lie in [0, shard_count)");
  }
  if (options_.shard_count > 1 &&
      (options_.left_keys.empty() || options_.right_keys.empty())) {
    return Status::InvalidArgument(
        name() + ": sharded execution requires equi-join keys");
  }
  if (options_.window_join &&
      (options_.left_ts < 0 || options_.right_ts < 0)) {
    return Status::InvalidArgument(
        name() + ": window_join requires both timestamp attributes");
  }
  if (options_.window_join && !options_.window.tumbling()) {
    return Status::Unsupported(
        name() + ": only tumbling-window joins are supported");
  }
  if (options_.thrifty && !options_.window_join) {
    return Status::InvalidArgument(
        name() + ": thrifty mode requires window_join");
  }
  if (options_.thrifty && options_.left_outer &&
      options_.thrifty_probe_input == 1) {
    return Status::InvalidArgument(
        name() +
        ": thrifty feedback from the right probe would suppress left "
        "tuples that a left-outer join must still emit");
  }

  // Output = all left attrs, then right attrs minus the join keys.
  std::vector<Field> out = left.fields();
  right_nonkey_.clear();
  for (int i = 0; i < right_arity_; ++i) {
    bool is_key = false;
    for (int k : options_.right_keys) {
      if (k == i) is_key = true;
    }
    if (!is_key) {
      right_nonkey_.push_back(i);
      out.push_back(right.field(i));
    }
  }
  SetOutputSchema(0, Schema::Make(std::move(out)));

  // SchemaMap (§4.2): left attrs map to input 0; join keys also map to
  // input 1; appended right attrs map to input 1.
  map_ = SchemaMap(2, output_schema(0)->num_fields());
  for (int i = 0; i < left_arity_; ++i) {
    NSTREAM_RETURN_NOT_OK(map_.Map(i, 0, i));
    for (size_t k = 0; k < options_.left_keys.size(); ++k) {
      if (options_.left_keys[k] == i) {
        NSTREAM_RETURN_NOT_OK(map_.Map(i, 1, options_.right_keys[k]));
      }
    }
  }
  for (size_t m = 0; m < right_nonkey_.size(); ++m) {
    NSTREAM_RETURN_NOT_OK(map_.Map(left_arity_ + static_cast<int>(m), 1,
                                   right_nonkey_[m]));
  }
  return Status::OK();
}

int64_t SymmetricHashJoin::WidOf(const Tuple& t, int port) const {
  if (!options_.window_join) return 0;
  int ts_attr = port == 0 ? options_.left_ts : options_.right_ts;
  Result<int64_t> ts = t.value(ts_attr).AsInt64();
  if (!ts.ok()) return 0;
  // Tumbling: exactly one window.
  return WindowSpec::FloorDiv(ts.value(), options_.window.slide_ms);
}

uint64_t SymmetricHashJoin::KeyHash(const Tuple& t, int port,
                                    int64_t wid) const {
  if (options_.key_hash_override) {
    return options_.key_hash_override(t, port, wid);
  }
  const std::vector<int>& keys =
      port == 0 ? options_.left_keys : options_.right_keys;
  // Mixing the window id keeps the same key in adjacent windows in
  // different buckets.
  return MixWidHash(static_cast<uint64_t>(t.HashSubset(keys)), wid);
}

Status SymmetricHashJoin::Open(ExecContext* ctx) {
  NSTREAM_RETURN_NOT_OK(Operator::Open(ctx));
  paged_emission_ = this->ctx()->PagedEmissionPreferred();
  return Status::OK();
}

TupleArena* SymmetricHashJoin::OutArena() {
  // Results staged for paged emission build straight into the staging
  // page's arena — zero heap allocations per result tuple. Per-element
  // emitters (the SimExecutor path) get owned tuples via the nullptr
  // fallback.
  if (!paged_emission_) return nullptr;
  return out_staged_.arena();
}

Tuple SymmetricHashJoin::JoinTuples(const Tuple& left, const Tuple& right,
                                    TupleArena* arena) const {
  Tuple out(arena, static_cast<size_t>(left.size()) + right_nonkey_.size());
  for (int i = 0; i < left.size(); ++i) out.Append(left.value(i));
  for (int i : right_nonkey_) out.Append(right.value(i));
  out.set_id(left.id());
  return out;
}

Tuple SymmetricHashJoin::OuterTuple(const Tuple& left,
                                    TupleArena* arena) const {
  Tuple out(arena, static_cast<size_t>(left.size()) + right_nonkey_.size());
  for (int i = 0; i < left.size(); ++i) out.Append(left.value(i));
  for (size_t i = 0; i < right_nonkey_.size(); ++i) {
    out.Append(Value::Null());
  }
  out.set_id(left.id());
  return out;
}

ColumnarBlock* SymmetricHashJoin::StagedColumnar() {
  if (out_staged_.is_columnar()) return out_staged_.columnar();
  if (!out_staged_.empty()) return nullptr;  // a row page is open
  if (!PageColumnar::enabled()) return nullptr;
  return out_staged_.BeginColumnar(
      static_cast<uint32_t>(left_arity_ +
                            static_cast<int>(right_nonkey_.size())),
      static_cast<uint32_t>(options_.output_page_size));
}

void SymmetricHashJoin::EmitJoinedPair(const Tuple& left,
                                       const Tuple* right) {
  if (paged_emission_ && output_guards_.empty()) {
    if (ColumnarBlock* blk = StagedColumnar()) {
      // Columnar result construction: one flat slot store per
      // attribute into contiguous column arrays — no per-result span
      // setup, no StreamElement, no intermediate row tuple.
      ++joined_count_;
      const uint32_t r = blk->AddRow(left.id(), /*arrival=*/-1);
      uint32_t c = 0;
      for (int i = 0; i < left.size(); ++i) {
        blk->Set(c++, r, left.value(i));
      }
      if (right != nullptr) {
        for (int i : right_nonkey_) blk->Set(c++, r, right->value(i));
      } else {
        for (size_t k = 0; k < right_nonkey_.size(); ++k) {
          blk->Set(c++, r, Value::Null());
        }
      }
      if (static_cast<int>(out_staged_.size()) >=
          options_.output_page_size) {
        FlushOutput();
      }
      return;
    }
  }
  // Row fallback (guards active, columnar/arenas off, or per-element
  // emission). Flush a columnar staged page BEFORE building the row
  // tuple: OutArena() is the staged page's arena, and a tuple built
  // there could not legally be staged into the page that replaces it.
  if (paged_emission_ && out_staged_.is_columnar()) FlushOutput();
  Tuple out = right != nullptr ? JoinTuples(left, *right, OutArena())
                               : OuterTuple(left, OutArena());
  EmitJoined(std::move(out));
}

void SymmetricHashJoin::EmitJoined(Tuple out) {
  // Guard-empty fast path: the common (no-feedback) pipeline pays one
  // branch here, not a call per result.
  if (!output_guards_.empty() && output_guards_.Blocks(out)) {
    ++stats_.output_guard_drops;
    return;
  }
  ++joined_count_;
  if (!paged_emission_) {
    Emit(0, std::move(out));
    return;
  }
  // Stage rather than emit: one queue lock per output page. Flushed at
  // the end of every ProcessPage call (no result is ever stranded
  // across scheduler wakes), before any punctuation emission, and at
  // EOS. Callers driving ProcessTuple directly (unit harnesses) see
  // results on their context only after one of those flush points.
  if (out_staged_.empty()) {
    out_staged_.Reserve(
        static_cast<size_t>(options_.output_page_size));
  }
  out_staged_.Add(StreamElement::OfTuple(std::move(out)));
  if (static_cast<int>(out_staged_.size()) >=
      options_.output_page_size) {
    FlushOutput();
  }
}

void SymmetricHashJoin::FlushOutput() {
  if (out_staged_.empty()) {
    // Guard-blocked results were built in the staging arena before
    // the Blocks() check dropped them (the guard matches the OUTPUT
    // tuple, so it cannot run before construction). If every result
    // since the last flush was blocked, the page is empty but the
    // arena holds their dead payloads — reset so a long-lived guard
    // cannot grow it without bound (chunks return to the pool).
    if (out_staged_.arena_if_created() != nullptr) out_staged_ = Page();
    return;
  }
  EmitPage(0, std::move(out_staged_));
  out_staged_ = Page();
}

Status SymmetricHashJoin::ProcessPage(int port, Page&& page,
                                      TimeMs* tick) {
  if (!options_.page_batched_probe) {
    Status st = Operator::ProcessPage(port, std::move(page), tick);
    FlushOutput();
    return st;
  }
  if (page.is_columnar()) {
    // Columnar input rides the dedicated column-sweep probe under the
    // default adjacency grouping; the sorted/adaptive variants (A/B
    // configurations) materialize rows and take their usual paths.
    if (options_.probe_grouping == ProbeGrouping::kAdjacent) {
      Status st = ProcessColumnarPage(port, std::move(page), tick);
      FlushOutput();
      return st;
    }
    page.EnsureRowLayout();
  }
  // Batched walk: runs of consecutive tuples take the grouped probe;
  // punctuation and EOS keep their element positions as run
  // boundaries, so watermark/guard state never changes mid-run and no
  // result ever overtakes a punctuation (FlushOutput inside
  // ProcessPunctuation precedes the punctuation emission).
  std::vector<StreamElement>& elems = page.mutable_elements();
  size_t i = 0;
  while (i < elems.size()) {
    if (elems[i].is_tuple()) {
      size_t j = i + 1;
      while (j < elems.size() && elems[j].is_tuple()) ++j;
      NSTREAM_RETURN_NOT_OK(ProcessTupleRun(port, elems, i, j, tick));
      i = j;
    } else {
      if (tick) ++*tick;
      if (elems[i].is_punct()) {
        NSTREAM_RETURN_NOT_OK(ProcessPunctuation(port, elems[i].punct()));
      } else {
        NSTREAM_RETURN_NOT_OK(ProcessEos(port));
      }
      ++i;
    }
  }
  FlushOutput();
  return Status::OK();
}

Status SymmetricHashJoin::ProcessTupleRun(
    int port, std::vector<StreamElement>& elems, size_t begin,
    size_t end, TimeMs* tick) {
  switch (options_.probe_grouping) {
    case ProbeGrouping::kSorted:
      return ProcessSortedRun(port, elems, begin, end, tick);
    case ProbeGrouping::kAdjacent:
      return ProcessAdjacentRun(port, elems, begin, end, tick);
    case ProbeGrouping::kAdaptive:
      // Grouped while duplicates are dense enough to pay for the
      // memoization bookkeeping; otherwise the plain element walk,
      // with a periodic grouped run to re-sample the density (the
      // grouped pass measures as it walks, the element walk cannot).
      if (adj_dup_ewma_ >= options_.adaptive_min_dup_fraction ||
          ++runs_since_dup_sample_ >= options_.adaptive_resample_period) {
        return ProcessAdjacentRun(port, elems, begin, end, tick);
      }
      return ProcessRunElementwise(port, elems, begin, end, tick);
  }
  return ProcessRunElementwise(port, elems, begin, end, tick);
}

Status SymmetricHashJoin::ProcessRunElementwise(
    int port, std::vector<StreamElement>& elems, size_t begin,
    size_t end, TimeMs* tick) {
  for (size_t e = begin; e < end; ++e) {
    if (tick) ++*tick;
    ++stats_.tuples_in;
    NSTREAM_RETURN_NOT_OK(ProcessTuple(port, elems[e].tuple()));
  }
  return Status::OK();
}

Status SymmetricHashJoin::ProcessAdjacentRun(
    int port, std::vector<StreamElement>& elems, size_t begin,
    size_t end, TimeMs* tick) {
  const std::vector<int>& my_keys =
      port == 0 ? options_.left_keys : options_.right_keys;
  const std::vector<int>& other_keys =
      port == 0 ? options_.right_keys : options_.left_keys;
  const int other = 1 - port;

  // One fused pass in element order. The memoized bucket pointers
  // stay valid across the walk: probing never mutates tables_[other],
  // and inserting into tables_[port] may rehash that map but never
  // moves its mapped vectors (unordered_map references are stable
  // under insertion).
  bool have_prev = false;
  uint64_t prev_key = 0;
  std::vector<Entry>* probe_bucket = nullptr;
  std::vector<Entry>* own_bucket = nullptr;
  uint64_t admitted = 0;
  uint64_t adjacent_dups = 0;

  for (size_t e = begin; e < end; ++e) {
    if (tick) ++*tick;
    ++stats_.tuples_in;
    const Tuple& tuple = elems[e].tuple();
    if (input_guards_[static_cast<size_t>(port)].Blocks(tuple)) {
      ++stats_.input_guard_drops;
      continue;
    }
#ifndef NDEBUG
    // Shard-routing tripwire: a mis-routed tuple would silently miss
    // its join partner, so verify the Exchange's placement decision.
    if (options_.shard_count > 1) {
      assert(ShardOfRoutingHash(ShardRoutingHash(tuple, my_keys),
                                options_.shard_count) ==
             options_.shard_index);
    }
#endif
    int64_t wid = WidOf(tuple, port);
    if (options_.window_join && wid <= watermark_[port]) {
      // Straggler past its window's punctuation: nothing to join
      // with. The watermark cannot advance mid-run (punctuation
      // bounds the run), so this matches the element-wise decision.
      continue;
    }
    uint64_t key = KeyHash(tuple, port, wid);
    ++admitted;
    if (have_prev && key == prev_key) {
      ++adjacent_dups;  // memoized buckets stay hot
    } else {
      auto it = tables_[other].find(key);
      probe_bucket = it == tables_[other].end() ? nullptr : &it->second;
      own_bucket = nullptr;  // resolved lazily at first insert
      prev_key = key;
      have_prev = true;
    }

    bool gated = false;
    if (port == 0 && options_.left_gate && !options_.left_gate(tuple)) {
      gated = true;
      if (options_.gate_feedback_horizon > 0 && options_.window_join) {
        SendGateFeedback(tuple, wid, key);
      }
    }

    bool matched_now = false;
    if (!gated && probe_bucket != nullptr) {
      for (Entry& ent : *probe_bucket) {
        if (port == 1 && ent.gated) continue;  // right probe skips gated
        if (ent.wid != wid ||
            !tuple.EqualsSubset(ent.tuple, my_keys, other_keys)) {
          continue;  // hash collision: not actually the same key
        }
        ent.matched = true;
        matched_now = true;
        if (port == 0) {
          EmitJoinedPair(tuple, &ent.tuple);
        } else {
          EmitJoinedPair(ent.tuple, &tuple);
        }
      }
    }

    if (options_.window_join) {
      ++window_counts_[port][wid];
      if (wid < min_seen_wid_[port]) min_seen_wid_[port] = wid;
      if (options_.impatient && port == options_.impatient_data_input) {
        MaybeImpatient(tuple, port, wid, key);
      }
    }
    Entry entry;
    entry.tuple = std::move(elems[e].mutable_tuple());  // page is ours
    // Table entries outlive the input page: promote arena-backed
    // tuples into table-owned (heap) storage.
    entry.tuple.Promote();
    entry.wid = wid;
    entry.gated = gated;
    entry.matched = matched_now;
    if (own_bucket == nullptr) own_bucket = &tables_[port][key];
    own_bucket->push_back(std::move(entry));
  }

  // Feed the adaptive density estimate (quarter-weight EWMA: reacts
  // within a few pages, shrugs off one odd run).
  if (admitted > 0) {
    double frac = static_cast<double>(adjacent_dups) /
                  static_cast<double>(admitted);
    adj_dup_ewma_ = 0.75 * adj_dup_ewma_ + 0.25 * frac;
    runs_since_dup_sample_ = 0;
  }
  return Status::OK();
}

Status SymmetricHashJoin::ProcessColumnarPage(int port, Page&& page,
                                              TimeMs* tick) {
  ColumnarBlock* b = page.columnar();
  const uint32_t n = b->size();
  if (n == 0) return Status::OK();
  const std::vector<int>& my_keys =
      port == 0 ? options_.left_keys : options_.right_keys;
  const std::vector<int>& other_keys =
      port == 0 ? options_.right_keys : options_.left_keys;
  const int other = 1 - port;

  Tuple scratch = b->MakeRowScratch();

  // Window ids: one contiguous sweep over the timestamp column. The
  // uniform-int64 column class (the norm for timestamps) hoists the
  // per-value dispatch out of the loop entirely.
  wid_scratch_.assign(n, 0);
  if (options_.window_join) {
    const int ts_attr = port == 0 ? options_.left_ts : options_.right_ts;
    const Value* col = b->column(ts_attr);
    const int64_t slide = options_.window.slide_ms;
    if (b->column_class(ts_attr) == ColumnClass::kInt64) {
      for (uint32_t i = 0; i < n; ++i) {
        wid_scratch_[i] = WindowSpec::FloorDiv(
            col[b->row_at(i)].unchecked_int64(), slide);
      }
    } else {
      for (uint32_t i = 0; i < n; ++i) {
        Result<int64_t> ts = col[b->row_at(i)].AsInt64();
        wid_scratch_[i] =
            ts.ok() ? WindowSpec::FloorDiv(ts.value(), slide) : 0;
      }
    }
  }

  // Key hashes, column-outer row-inner: per key attribute one pass
  // over its contiguous column, accumulating exactly the FNV chain
  // Tuple::HashSubset computes row-wise, then the wid mix. The
  // override seam (collision-forcing tests) evaluates per row on the
  // scratch view instead.
  if (options_.key_hash_override) {
    hash_scratch_.resize(n);
    for (uint32_t i = 0; i < n; ++i) {
      b->FillRow(b->row_at(i), &scratch);
      hash_scratch_[i] =
          options_.key_hash_override(scratch, port, wid_scratch_[i]);
    }
  } else {
    hash_scratch_.assign(n, 0xcbf29ce484222325ULL);
    for (int k : my_keys) {
      const Value* col = b->column(k);
      for (uint32_t i = 0; i < n; ++i) {
        hash_scratch_[i] ^= col[b->row_at(i)].Hash();
        hash_scratch_[i] *= 0x100000001b3ULL;
      }
    }
    for (uint32_t i = 0; i < n; ++i) {
      hash_scratch_[i] = MixWidHash(hash_scratch_[i], wid_scratch_[i]);
    }
  }

  // The fused adjacency-memoized walk of ProcessAdjacentRun, reading
  // rows through the reused aliased scratch view. Columnar pages are
  // tuples-only, so the whole page is one run.
  bool have_prev = false;
  uint64_t prev_key = 0;
  std::vector<Entry>* probe_bucket = nullptr;
  std::vector<Entry>* own_bucket = nullptr;
  uint64_t admitted = 0;
  uint64_t adjacent_dups = 0;

  for (uint32_t i = 0; i < n; ++i) {
    if (tick) ++*tick;
    ++stats_.tuples_in;
    const uint32_t r = b->row_at(i);
    b->FillRow(r, &scratch);
    const Tuple& tuple = scratch;
    if (input_guards_[static_cast<size_t>(port)].Blocks(tuple)) {
      ++stats_.input_guard_drops;
      continue;
    }
#ifndef NDEBUG
    // Shard-routing tripwire: a mis-routed tuple would silently miss
    // its join partner, so verify the Exchange's placement decision.
    if (options_.shard_count > 1) {
      assert(ShardOfRoutingHash(ShardRoutingHash(tuple, my_keys),
                                options_.shard_count) ==
             options_.shard_index);
    }
#endif
    const int64_t wid = wid_scratch_[i];
    if (options_.window_join && wid <= watermark_[port]) {
      // Straggler past its window's punctuation: nothing to join
      // with (the watermark cannot advance mid-page).
      continue;
    }
    const uint64_t key = hash_scratch_[i];
    ++admitted;
    if (have_prev && key == prev_key) {
      ++adjacent_dups;  // memoized buckets stay hot
    } else {
      auto it = tables_[other].find(key);
      probe_bucket = it == tables_[other].end() ? nullptr : &it->second;
      own_bucket = nullptr;  // resolved lazily at first insert
      prev_key = key;
      have_prev = true;
    }

    bool gated = false;
    if (port == 0 && options_.left_gate && !options_.left_gate(tuple)) {
      gated = true;
      if (options_.gate_feedback_horizon > 0 && options_.window_join) {
        SendGateFeedback(tuple, wid, key);
      }
    }

    bool matched_now = false;
    if (!gated && probe_bucket != nullptr) {
      for (Entry& ent : *probe_bucket) {
        if (port == 1 && ent.gated) continue;  // right probe skips gated
        if (ent.wid != wid ||
            !tuple.EqualsSubset(ent.tuple, my_keys, other_keys)) {
          continue;  // hash collision: not actually the same key
        }
        ent.matched = true;
        matched_now = true;
        if (port == 0) {
          EmitJoinedPair(tuple, &ent.tuple);
        } else {
          EmitJoinedPair(ent.tuple, &tuple);
        }
      }
    }

    if (options_.window_join) {
      ++window_counts_[port][wid];
      if (wid < min_seen_wid_[port]) min_seen_wid_[port] = wid;
      if (options_.impatient && port == options_.impatient_data_input) {
        MaybeImpatient(tuple, port, wid, key);
      }
    }
    Entry entry;
    // Table entries outlive the input page: gather the row into a
    // self-contained owned tuple (the columnar analogue of the row
    // path's move + Promote — the same one value copy per attribute).
    entry.tuple = b->GatherRowOwned(r);
    entry.wid = wid;
    entry.gated = gated;
    entry.matched = matched_now;
    if (own_bucket == nullptr) own_bucket = &tables_[port][key];
    own_bucket->push_back(std::move(entry));
  }

  if (admitted > 0) {
    double frac = static_cast<double>(adjacent_dups) /
                  static_cast<double>(admitted);
    adj_dup_ewma_ = 0.75 * adj_dup_ewma_ + 0.25 * frac;
    runs_since_dup_sample_ = 0;
  }
  return Status::OK();
}

Status SymmetricHashJoin::ProcessSortedRun(
    int port, std::vector<StreamElement>& elems, size_t begin,
    size_t end, TimeMs* tick) {
  const std::vector<int>& my_keys =
      port == 0 ? options_.left_keys : options_.right_keys;
  const std::vector<int>& other_keys =
      port == 0 ? options_.right_keys : options_.left_keys;
  const int other = 1 - port;

  // Pass 1: per-tuple admission (guards, stragglers, gate) and key
  // derivation — everything ProcessTuple does before touching a table.
  std::vector<RunItem>& run = run_scratch_;
  run.clear();
  for (size_t e = begin; e < end; ++e) {
    if (tick) ++*tick;
    ++stats_.tuples_in;
    const Tuple& tuple = elems[e].tuple();
    if (input_guards_[static_cast<size_t>(port)].Blocks(tuple)) {
      ++stats_.input_guard_drops;
      continue;
    }
#ifndef NDEBUG
    // Shard-routing tripwire: a mis-routed tuple would silently miss
    // its join partner, so verify the Exchange's placement decision.
    if (options_.shard_count > 1) {
      assert(ShardOfRoutingHash(
                 ShardRoutingHash(tuple, my_keys),
                 options_.shard_count) == options_.shard_index);
    }
#endif
    int64_t wid = WidOf(tuple, port);
    if (options_.window_join && wid <= watermark_[port]) {
      // Straggler past its window's punctuation: nothing to join with.
      // The watermark cannot advance mid-run (only punctuation moves
      // it, and punctuation bounds the run), so this decision is
      // identical to the element-wise walk's.
      continue;
    }
    RunItem item;
    item.elem = static_cast<uint32_t>(e);
    item.wid = wid;
    item.key = KeyHash(tuple, port, wid);
    if (port == 0 && options_.left_gate && !options_.left_gate(tuple)) {
      item.gated = true;
      if (options_.gate_feedback_horizon > 0 && options_.window_join) {
        SendGateFeedback(tuple, wid, item.key);
      }
    }
    run.push_back(item);
  }
  if (run.empty()) return Status::OK();

  // Pass 2: group by key hash. The element-index tiebreak keeps the
  // order within a key stable, so per-key output order matches the
  // element-wise walk; only the interleaving across keys differs.
  std::sort(run.begin(), run.end(),
            [](const RunItem& a, const RunItem& b) {
              if (a.key != b.key) return a.key < b.key;
              return a.elem < b.elem;
            });

  // Pass 3: per key group, one probe lookup and one insert lookup.
  // Same-port tuples never join each other (tables are per input), so
  // deferring the inserts to the end of the group cannot change the
  // result set.
  size_t g = 0;
  while (g < run.size()) {
    size_t h = g + 1;
    while (h < run.size() && run[h].key == run[g].key) ++h;
    const uint64_t key = run[g].key;

    auto it = tables_[other].find(key);
    if (it != tables_[other].end()) {
      for (size_t m = g; m < h; ++m) {
        if (run[m].gated) continue;  // a gated left tuple never probes
        const Tuple& tuple = elems[run[m].elem].tuple();
        for (Entry& ent : it->second) {
          if (port == 1 && ent.gated) continue;  // right probe skips gated
          if (ent.wid != run[m].wid ||
              !tuple.EqualsSubset(ent.tuple, my_keys, other_keys)) {
            continue;  // hash collision: not actually the same key
          }
          ent.matched = true;
          run[m].matched = true;
          if (port == 0) {
            EmitJoinedPair(tuple, &ent.tuple);
          } else {
            EmitJoinedPair(ent.tuple, &tuple);
          }
        }
      }
    }

    std::vector<Entry>& own = tables_[port][key];
    for (size_t m = g; m < h; ++m) {
      Tuple& tuple = elems[run[m].elem].mutable_tuple();
      if (options_.window_join) {
        ++window_counts_[port][run[m].wid];
        if (run[m].wid < min_seen_wid_[port]) {
          min_seen_wid_[port] = run[m].wid;
        }
        if (options_.impatient &&
            port == options_.impatient_data_input) {
          MaybeImpatient(tuple, port, run[m].wid, key);
        }
      }
      Entry entry;
      entry.tuple = std::move(tuple);  // page is ours: move, don't copy
      // Table entries outlive the input page: promote arena-backed
      // tuples into table-owned (heap) storage. Owned tuples (the
      // source-fed common case) keep the zero-copy move.
      entry.tuple.Promote();
      entry.wid = run[m].wid;
      entry.gated = run[m].gated;
      entry.matched = run[m].matched;
      own.push_back(std::move(entry));
    }
    g = h;
  }
  return Status::OK();
}

Status SymmetricHashJoin::ProcessTuple(int port, const Tuple& tuple) {
  if (input_guards_[static_cast<size_t>(port)].Blocks(tuple)) {
    ++stats_.input_guard_drops;
    return Status::OK();
  }
#ifndef NDEBUG
  // Shard-routing tripwire: a mis-routed tuple would silently miss its
  // join partner, so verify the Exchange's placement decision here.
  if (options_.shard_count > 1) {
    const std::vector<int>& route_keys =
        port == 0 ? options_.left_keys : options_.right_keys;
    assert(ShardOfRoutingHash(ShardRoutingHash(tuple, route_keys),
                              options_.shard_count) ==
           options_.shard_index);
  }
#endif
  int64_t wid = WidOf(tuple, port);
  if (options_.window_join && wid <= watermark_[port]) {
    // Straggler past its window's punctuation: nothing to join with.
    return Status::OK();
  }
  uint64_t key = KeyHash(tuple, port, wid);

  // Adaptive gate: a failed left tuple neither probes nor is probed;
  // it still emits as an outer row at window close. Its failure is the
  // discovery of a processing opportunity on the right branch.
  bool gated = false;
  if (port == 0 && options_.left_gate && !options_.left_gate(tuple)) {
    gated = true;
    if (options_.gate_feedback_horizon > 0 && options_.window_join) {
      SendGateFeedback(tuple, wid, key);
    }
  }

  // Probe the other side. Equal hashes are not enough: each candidate
  // must pass the wid check and value equality on the key subset.
  const std::vector<int>& my_keys =
      port == 0 ? options_.left_keys : options_.right_keys;
  const std::vector<int>& other_keys =
      port == 0 ? options_.right_keys : options_.left_keys;
  int other = 1 - port;
  auto it = tables_[other].find(key);
  bool matched_now = false;
  if (!gated && it != tables_[other].end()) {
    for (Entry& e : it->second) {
      if (port == 1 && e.gated) continue;  // right probe skips gated
      if (e.wid != wid ||
          !tuple.EqualsSubset(e.tuple, my_keys, other_keys)) {
        continue;  // hash collision: not actually the same key
      }
      e.matched = true;
      matched_now = true;
      if (port == 0) {
        EmitJoinedPair(tuple, &e.tuple);
      } else {
        EmitJoinedPair(e.tuple, &tuple);
      }
    }
  }
  // Insert into own table.
  Entry entry;
  entry.tuple = tuple;
  entry.wid = wid;
  entry.gated = gated;
  entry.matched = matched_now;
  tables_[port][key].push_back(std::move(entry));

  if (options_.window_join) {
    ++window_counts_[port][wid];
    if (wid < min_seen_wid_[port]) min_seen_wid_[port] = wid;
    if (options_.impatient && port == options_.impatient_data_input) {
      MaybeImpatient(tuple, port, wid, key);
    }
  }
  return Status::OK();
}

void SymmetricHashJoin::MaybeImpatient(const Tuple& t, int port,
                                       int64_t wid, uint64_t key) {
  if (!impatient_requested_.insert(key).second) return;

  // Build a desired pattern over the OTHER input's schema: same join
  // keys, timestamps within this window.
  int other = 1 - port;
  const std::vector<int>& my_keys =
      port == 0 ? options_.left_keys : options_.right_keys;
  const std::vector<int>& other_keys =
      port == 0 ? options_.right_keys : options_.left_keys;
  int other_ts = other == 0 ? options_.left_ts : options_.right_ts;
  PunctPattern p = PunctPattern::AllWildcard(
      input_schema(other)->num_fields());
  for (size_t k = 0; k < my_keys.size(); ++k) {
    p = p.With(other_keys[k], AttrPattern::Eq(t.value(my_keys[k])));
  }
  p = p.With(other_ts,
             AttrPattern::Range(
                 Value::Timestamp(options_.window.WindowStart(wid)),
                 Value::Timestamp(options_.window.WindowEnd(wid) - 1)));
  ++impatient_feedbacks_;
  SendFeedback(other, FeedbackPunctuation::Desired(std::move(p)));
}

void SymmetricHashJoin::SendGateFeedback(const Tuple& t, int64_t wid,
                                         uint64_t key) {
  // Rate-limit: one prediction per (window, key).
  if (!gate_requested_.insert(key).second) return;

  PunctPattern p = PunctPattern::AllWildcard(
      input_schema(1)->num_fields());
  for (size_t k = 0; k < options_.left_keys.size(); ++k) {
    p = p.With(options_.right_keys[k],
               AttrPattern::Eq(t.value(options_.left_keys[k])));
  }
  int64_t from = wid + 1;
  int64_t to = wid + options_.gate_feedback_horizon;
  p = p.With(options_.right_ts,
             AttrPattern::Range(
                 Value::Timestamp(options_.window.WindowStart(from)),
                 Value::Timestamp(options_.window.WindowEnd(to) - 1)));
  ++gate_feedbacks_;
  SendFeedback(1, FeedbackPunctuation::Assumed(p));
  stats_.work_avoided +=
      static_cast<uint64_t>(ctx()->PurgeInput(1, p));
}

void SymmetricHashJoin::PurgeWindowsThrough(int side, int64_t wid,
                                            bool emit_outer) {
  Table& table = tables_[side];
  for (auto it = table.begin(); it != table.end();) {
    std::vector<Entry>& entries = it->second;
    std::vector<Entry> kept;
    for (Entry& e : entries) {
      if (e.wid > wid) {
        kept.push_back(std::move(e));
        continue;
      }
      if (emit_outer && !e.matched) {
        EmitJoinedPair(e.tuple, /*right=*/nullptr);
      }
      ++stats_.state_purged;
    }
    if (kept.empty()) {
      it = table.erase(it);
    } else {
      it->second = std::move(kept);
      ++it;
    }
  }
  // NOTE: window_counts_ are NOT erased here. They are reclaimed only
  // when their own side's punctuation passes (ProcessPunctuation):
  // the thrifty check needs the probe side's counts to survive until
  // the probe stream itself punctuates the window.
}

void SymmetricHashJoin::MaybeThrifty(int64_t through_wid) {
  if (!options_.thrifty) return;
  int probe = options_.thrifty_probe_input;
  int other = 1 - probe;
  int other_ts = other == 0 ? options_.left_ts : options_.right_ts;
  int64_t from;
  if (thrifty_checked_through_ == INT64_MIN) {
    // First punctuation: start from the earliest probe window seen (or
    // this one), clamped at window 0 — application time is
    // non-negative in this engine, so earlier windows are vacuous.
    from = std::min(min_seen_wid_[probe], through_wid);
    if (from < 0) from = 0;
  } else {
    from = thrifty_checked_through_ + 1;
  }
  for (int64_t w = from; w <= through_wid; ++w) {
    auto it = window_counts_[probe].find(w);
    uint64_t count = it == window_counts_[probe].end() ? 0 : it->second;
    if (count != 0) continue;
    // Empty probe window: tuples of the other input in this window can
    // never produce join output — tell its antecedents (§3.3).
    PunctPattern p = PunctPattern::AllWildcard(
        input_schema(other)->num_fields());
    p = p.With(other_ts,
               AttrPattern::Range(
                   Value::Timestamp(options_.window.WindowStart(w)),
                   Value::Timestamp(options_.window.WindowEnd(w) - 1)));
    ++thrifty_feedbacks_;
    SendFeedback(other, FeedbackPunctuation::Assumed(p));
    stats_.work_avoided +=
        static_cast<uint64_t>(ctx()->PurgeInput(other, p));
  }
  thrifty_checked_through_ = through_wid;
}

Status SymmetricHashJoin::ProcessPunctuation(int port,
                                             const Punctuation& punct) {
  ++stats_.puncts_in;
  input_guards_[static_cast<size_t>(port)].ExpireCovered(punct);
  if (!options_.window_join) return Status::OK();

  // Watermark punctuation on this input's timestamp attribute.
  int ts_attr = port == 0 ? options_.left_ts : options_.right_ts;
  const PunctPattern& p = punct.pattern();
  std::vector<int> constrained = p.ConstrainedIndices();
  if (constrained.size() != 1 || constrained[0] != ts_attr) {
    return Status::OK();
  }
  const AttrPattern& ap = p.attr(ts_attr);
  Result<int64_t> bound = ap.operand().AsInt64();
  if (!bound.ok()) return Status::OK();
  int64_t inclusive = bound.value();
  if (ap.op() == PatternOp::kLt) {
    inclusive -= 1;
  } else if (ap.op() != PatternOp::kLe) {
    return Status::OK();
  }
  int64_t through = options_.window.LastClosableWindow(inclusive);
  if (through <= watermark_[port]) return Status::OK();
  watermark_[port] = through;

  if (options_.thrifty && port == options_.thrifty_probe_input) {
    MaybeThrifty(through);
  }
  // This side's counts for closed windows are no longer needed.
  auto& counts = window_counts_[port];
  for (auto cit = counts.begin();
       cit != counts.end() && cit->first <= through;) {
    cit = counts.erase(cit);
  }

  // This input is done with windows <= through, so the OTHER side's
  // entries there can never be probed again — purge them. Unmatched
  // left entries emit their outer tuple once the right input is done.
  int other = 1 - port;
  bool emit_outer = options_.left_outer && other == 0;
  PurgeWindowsThrough(other, through, emit_outer);

  // Downstream completeness: windows <= min watermark are final.
  int64_t both = std::min(watermark_[0], watermark_[1]);
  if (both > emitted_punct_through_ && both != INT64_MIN) {
    emitted_punct_through_ = both;
    PunctPattern out = PunctPattern::AllWildcard(
        output_schema(0)->num_fields());
    out = out.With(options_.left_ts,
                   AttrPattern::Le(Value::Timestamp(
                       options_.window.WindowEnd(both) - 1)));
    Punctuation out_punct(out);
    output_guards_.ExpireCovered(out_punct);
    FlushOutput();  // results for the closed windows go first
    EmitPunct(0, std::move(out_punct));
  }
  return Status::OK();
}

Status SymmetricHashJoin::OnAllInputsEos() {
  if (options_.left_outer) {
    // Remaining unmatched left tuples emit with NULL right attributes.
    std::vector<const Entry*> unmatched;
    for (const auto& [key, entries] : tables_[0]) {
      for (const Entry& e : entries) {
        if (!e.matched) unmatched.push_back(&e);
      }
    }
    std::sort(unmatched.begin(), unmatched.end(),
              [](const Entry* a, const Entry* b) {
                if (a->wid != b->wid) return a->wid < b->wid;
                return a->tuple.id() < b->tuple.id();
              });
    for (const Entry* e : unmatched) {
      EmitJoinedPair(e->tuple, /*right=*/nullptr);
    }
  }
  tables_[0].clear();
  tables_[1].clear();
  FlushOutput();  // final results precede the EOS markers
  return Operator::OnAllInputsEos();
}

Status SymmetricHashJoin::HandleAssumed(const FeedbackPunctuation& fb) {
  if (options_.conservative_no_retraction ||
      options_.feedback_policy == FeedbackPolicy::kOutputGuardOnly) {
    output_guards_.Add(fb.pattern());
    return Status::OK();
  }
  bool exploited = false;
  for (int input = 0; input < 2; ++input) {
    Result<PunctPattern> derived = DeriveForInput(
        fb.pattern(), map_, input,
        input_schema(input)->num_fields());
    if (!derived.ok()) continue;
    exploited = true;
    // Table 2 local exploit: purge matching entries from this side's
    // hash table and guard the input. The compilation is shared via
    // the global cache — sharded plans derive the identical pattern in
    // every shard, and upstream hops purge with it again.
    std::shared_ptr<const CompiledPattern> compiled_ptr =
        CompiledPatternCache::Global().Get(derived.value());
    const CompiledPattern& compiled = *compiled_ptr;
    Table& table = tables_[input];
    for (auto it = table.begin(); it != table.end();) {
      std::vector<Entry>& entries = it->second;
      size_t before = entries.size();
      entries.erase(
          std::remove_if(entries.begin(), entries.end(),
                         [&](const Entry& e) {
                           return compiled.Matches(e.tuple);
                         }),
          entries.end());
      stats_.state_purged += before - entries.size();
      if (entries.empty()) {
        it = table.erase(it);
      } else {
        ++it;
      }
    }
    input_guards_[static_cast<size_t>(input)].Add(derived.value());
    ctx()->PurgeInput(input, derived.value());
    if (PolicyAtLeast(options_.feedback_policy,
                      FeedbackPolicy::kExploitAndPropagate)) {
      RelayFeedback(input,
                    FeedbackPunctuation::Assumed(derived.MoveValue()));
    }
  }
  if (!exploited) {
    // ¬[l,*,r]: constraints split across inputs — guard output only.
    output_guards_.Add(fb.pattern());
  }
  return Status::OK();
}

Status SymmetricHashJoin::ProcessFeedback(int,
                                          const FeedbackPunctuation& fb) {
  if (options_.feedback_policy == FeedbackPolicy::kIgnore ||
      fb.pattern().arity() != output_schema(0)->num_fields()) {
    ++stats_.feedback_ignored;
    return Status::OK();
  }
  if (fb.intent() == FeedbackIntent::kAssumed) {
    return HandleAssumed(fb);
  }
  // Desired / demanded: prioritization only — content is unaffected.
  bool any = false;
  for (int input = 0; input < 2; ++input) {
    Result<PunctPattern> derived = DeriveForInput(
        fb.pattern(), map_, input, input_schema(input)->num_fields());
    if (!derived.ok()) continue;
    any = true;
    ctx()->PrioritizeInput(input, derived.value());
    if (PolicyAtLeast(options_.feedback_policy,
                      FeedbackPolicy::kExploitAndPropagate)) {
      FeedbackPunctuation up(fb.intent(), derived.MoveValue());
      up.set_origin_op(fb.origin_op());
      RelayFeedback(input, std::move(up));
    }
  }
  if (!any) ++stats_.feedback_ignored;
  return Status::OK();
}

size_t SymmetricHashJoin::table_size(int input) const {
  size_t n = 0;
  for (const auto& [key, entries] : tables_[input]) n += entries.size();
  return n;
}

namespace {

// Canonical (sorted) key order for the unordered containers, so the
// snapshot byte stream is independent of insertion history.
template <typename Map>
std::vector<uint64_t> SortedKeys(const Map& m) {
  std::vector<uint64_t> keys;
  keys.reserve(m.size());
  for (const auto& kv : m) keys.push_back(kv.first);
  std::sort(keys.begin(), keys.end());
  return keys;
}

std::vector<uint64_t> SortedSet(const std::unordered_set<uint64_t>& s) {
  std::vector<uint64_t> keys(s.begin(), s.end());
  std::sort(keys.begin(), keys.end());
  return keys;
}

}  // namespace

Status SymmetricHashJoin::SnapshotState(SnapshotWriter* w) {
  NSTREAM_RETURN_NOT_OK(Operator::SnapshotState(w));
  for (int side = 0; side < 2; ++side) {
    const Table& table = tables_[side];
    w->WriteU32(static_cast<uint32_t>(table.size()));
    for (uint64_t key : SortedKeys(table)) {
      const std::vector<Entry>& entries = table.at(key);
      w->WriteU64(key);
      w->WriteU32(static_cast<uint32_t>(entries.size()));
      for (const Entry& e : entries) {
        w->WriteTuple(e.tuple);
        w->WriteI64(e.wid);
        w->WriteBool(e.matched);
        w->WriteBool(e.gated);
      }
    }
    w->WriteGuardSet(input_guards_[side]);
    w->WriteU32(static_cast<uint32_t>(window_counts_[side].size()));
    for (const auto& [wid, count] : window_counts_[side]) {
      w->WriteI64(wid);
      w->WriteU64(count);
    }
    w->WriteI64(min_seen_wid_[side]);
    w->WriteI64(watermark_[side]);
  }
  w->WriteGuardSet(output_guards_);
  w->WriteI64(emitted_punct_through_);
  w->WriteI64(thrifty_checked_through_);
  for (const auto* set : {&impatient_requested_, &gate_requested_}) {
    std::vector<uint64_t> keys = SortedSet(*set);
    w->WriteU32(static_cast<uint32_t>(keys.size()));
    for (uint64_t k : keys) w->WriteU64(k);
  }
  w->WriteU64(thrifty_feedbacks_);
  w->WriteU64(impatient_feedbacks_);
  w->WriteU64(gate_feedbacks_);
  w->WriteU64(joined_count_);
  // Staged-but-unflushed results. Empty at any punctuation-aligned
  // barrier (ProcessPage flushes before returning), but captured
  // anyway so the hook is honest for ad-hoc snapshot points too.
  WritePageElements(w, out_staged_);
  return Status::OK();
}

Status SymmetricHashJoin::RestoreState(SnapshotReader* r) {
  NSTREAM_RETURN_NOT_OK(Operator::RestoreState(r));
  for (int side = 0; side < 2; ++side) {
    Table& table = tables_[side];
    table.clear();
    uint32_t nkeys = 0;
    NSTREAM_RETURN_NOT_OK(r->ReadU32(&nkeys));
    table.reserve(nkeys);
    for (uint32_t i = 0; i < nkeys; ++i) {
      uint64_t key = 0;
      uint32_t nentries = 0;
      NSTREAM_RETURN_NOT_OK(r->ReadU64(&key));
      NSTREAM_RETURN_NOT_OK(r->ReadU32(&nentries));
      std::vector<Entry>& entries = table[key];
      entries.reserve(nentries);
      for (uint32_t j = 0; j < nentries; ++j) {
        Entry e;
        NSTREAM_RETURN_NOT_OK(r->ReadTuple(&e.tuple));
        NSTREAM_RETURN_NOT_OK(r->ReadI64(&e.wid));
        NSTREAM_RETURN_NOT_OK(r->ReadBool(&e.matched));
        NSTREAM_RETURN_NOT_OK(r->ReadBool(&e.gated));
        entries.push_back(std::move(e));
      }
    }
    NSTREAM_RETURN_NOT_OK(r->ReadGuardSet(&input_guards_[side]));
    window_counts_[side].clear();
    uint32_t nwin = 0;
    NSTREAM_RETURN_NOT_OK(r->ReadU32(&nwin));
    for (uint32_t i = 0; i < nwin; ++i) {
      int64_t wid = 0;
      uint64_t count = 0;
      NSTREAM_RETURN_NOT_OK(r->ReadI64(&wid));
      NSTREAM_RETURN_NOT_OK(r->ReadU64(&count));
      window_counts_[side][wid] = count;
    }
    NSTREAM_RETURN_NOT_OK(r->ReadI64(&min_seen_wid_[side]));
    NSTREAM_RETURN_NOT_OK(r->ReadI64(&watermark_[side]));
  }
  NSTREAM_RETURN_NOT_OK(r->ReadGuardSet(&output_guards_));
  NSTREAM_RETURN_NOT_OK(r->ReadI64(&emitted_punct_through_));
  NSTREAM_RETURN_NOT_OK(r->ReadI64(&thrifty_checked_through_));
  for (auto* set : {&impatient_requested_, &gate_requested_}) {
    set->clear();
    uint32_t n = 0;
    NSTREAM_RETURN_NOT_OK(r->ReadU32(&n));
    set->reserve(n);
    for (uint32_t i = 0; i < n; ++i) {
      uint64_t k = 0;
      NSTREAM_RETURN_NOT_OK(r->ReadU64(&k));
      set->insert(k);
    }
  }
  NSTREAM_RETURN_NOT_OK(r->ReadU64(&thrifty_feedbacks_));
  NSTREAM_RETURN_NOT_OK(r->ReadU64(&impatient_feedbacks_));
  NSTREAM_RETURN_NOT_OK(r->ReadU64(&gate_feedbacks_));
  NSTREAM_RETURN_NOT_OK(r->ReadU64(&joined_count_));
  out_staged_ = Page();
  NSTREAM_RETURN_NOT_OK(ReadPageInto(r, &out_staged_));
  return Status::OK();
}

}  // namespace nstream
