// WID-style windowing (Li et al. [8], the foundation of NiagaraST's
// OOP architecture [9]): a tuple's window memberships are computed
// from its timestamp alone, so processing is order-agnostic and
// windows are *closed by punctuation*, not by arrival order.
//
// Window w covers application time [w*slide, w*slide + range); its
// window-id is w and its "window end" (the output timestamp) is
// w*slide + range. Tumbling windows are slide == range.

#ifndef NSTREAM_OPS_WINDOW_H_
#define NSTREAM_OPS_WINDOW_H_

#include <vector>

#include "common/clock.h"
#include "common/status.h"
#include "punct/attr_pattern.h"

namespace nstream {

struct WindowSpec {
  TimeMs range_ms = 60'000;
  TimeMs slide_ms = 60'000;

  bool tumbling() const { return range_ms == slide_ms; }

  /// Ids of all windows containing application time `ts`.
  std::vector<int64_t> WindowsOf(TimeMs ts) const {
    std::vector<int64_t> out;
    // w*slide <= ts < w*slide + range  ⇔  (ts-range)/slide < w <= ts/slide
    int64_t hi = FloorDiv(ts, slide_ms);
    int64_t lo = FloorDiv(ts - range_ms, slide_ms) + 1;
    out.reserve(static_cast<size_t>(hi - lo + 1));
    for (int64_t w = lo; w <= hi; ++w) out.push_back(w);
    return out;
  }

  TimeMs WindowStart(int64_t w) const { return w * slide_ms; }
  TimeMs WindowEnd(int64_t w) const { return w * slide_ms + range_ms; }

  /// Largest window id fully covered by "all tuples with ts <= bound
  /// have been seen": window w is closable iff WindowEnd(w) <= bound+1,
  /// i.e. every tuple it could contain has timestamp <= bound.
  int64_t LastClosableWindow(TimeMs ts_bound_inclusive) const {
    // WindowEnd(w) <= bound+1  ⇔  w <= (bound+1-range)/slide
    return FloorDiv(ts_bound_inclusive + 1 - range_ms, slide_ms);
  }

  static int64_t FloorDiv(int64_t a, int64_t b) {
    int64_t q = a / b;
    if ((a % b != 0) && ((a < 0) != (b < 0))) --q;
    return q;
  }
};

/// Map a constraint on the *window end* output attribute into a sound
/// constraint on the input *timestamp* attribute, for upstream
/// propagation. Soundness = never over-suppress: the returned pattern
/// matches a tuple only if EVERY window that tuple contributes to is
/// covered by the window-end constraint (Example 2's pitfall: with
/// sliding windows a tuple belongs to several windows, so filtering at
/// the bottom of the plan on a per-window basis is incorrect).
///
/// Returns Unsupported for shapes that cannot be mapped soundly
/// (equality under sliding windows, ≠, ranges).
Result<AttrPattern> MapWindowEndToTimestamp(const AttrPattern& window_end,
                                            const WindowSpec& spec);

}  // namespace nstream

#endif  // NSTREAM_OPS_WINDOW_H_
