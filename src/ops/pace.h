// PACE: the paper's policy-enforcing union (Example 3, Experiment 1).
// Unites N same-schema inputs while bounding the divergence between
// them: it tracks the high-watermark of the timestamp attribute across
// all inputs, and a tuple arriving more than `tolerance_ms` behind that
// watermark is "too late" — dropped (mode kDrop*) or merely counted
// (mode kUnionOnly, the no-PACE baseline of Fig. 5).
//
// As a feedback *producer*, PACE turns the detected violation into
// assumed punctuation ¬[...,≤ hwm−tolerance,...] sent upstream so that
// antecedent operators (IMPUTE) stop wasting effort on tuples that
// would be ignored anyway (Fig. 6).

#ifndef NSTREAM_OPS_PACE_H_
#define NSTREAM_OPS_PACE_H_

#include <string>
#include <vector>

#include "ops/union_op.h"

namespace nstream {

enum class PaceMode : uint8_t {
  kUnionOnly = 0,       // plain UNION: pass everything, count lateness
  kDrop,                // enforce the bound by dropping late tuples
  kDropAndFeedback,     // also produce assumed feedback upstream
};

struct PaceOptions {
  // Timestamp attribute (application time) the policy is stated over.
  int ts_attr = 0;
  // Maximum tolerated divergence (the WITH PACE ... <k> MINUTE bound).
  TimeMs tolerance_ms = 60'000;
  PaceMode mode = PaceMode::kDropAndFeedback;
  // Re-issue feedback only after the watermark advanced this far past
  // the last issued bound (avoids a feedback message per tuple).
  TimeMs feedback_min_advance_ms = 1'000;
  // The issued bound is (hwm - headroom). The paper's PACE punctuates
  // at the current high watermark itself (headroom 0): once divergence
  // exceeds tolerance, *everything* older than the watermark is
  // declared no longer needed, so the lagging branch catches all the
  // way up instead of hovering at the tolerance edge.
  TimeMs feedback_headroom_ms = 0;
  // Inputs to send feedback to; empty = all inputs.
  std::vector<int> feedback_inputs;
};

/// Per-input accounting for the Experiment 1 metrics.
struct PaceInputStats {
  uint64_t tuples = 0;
  uint64_t timely = 0;
  uint64_t late = 0;     // beyond tolerance (passed in kUnionOnly mode)
  uint64_t dropped = 0;  // late tuples removed (kDrop / kDropAndFeedback)
};

class Pace final : public UnionOp {
 public:
  Pace(std::string name, int num_inputs, PaceOptions options,
       UnionOptions union_options = {})
      : UnionOp(std::move(name), num_inputs, union_options),
        options_(options),
        per_input_(static_cast<size_t>(num_inputs)) {}

  Status ProcessTuple(int port, const Tuple& tuple) override {
    if (Admit(port, tuple)) Emit(0, tuple);
    return Status::OK();
  }

  /// Page-at-a-time path: the run of leading tuples takes the policy
  /// check in a tight loop (guards are fixed within a run — only
  /// punctuation expires them, and punctuation bounds the run; the
  /// watermark is monotone and advances inline exactly as the
  /// element walk would), survivors compact IN PLACE, and the page
  /// itself — arena and all — is forwarded, the same zero-copy hop
  /// as Select's paged filter. In kDrop* modes this turns the
  /// enforcement loop into one pass over a warm page instead of one
  /// Emit (queue hop) per timely tuple.
  Status ProcessPage(int port, Page&& page, TimeMs* tick) override {
    if (!ctx()->PagedEmissionPreferred()) {
      // Per-element emitters (the SimExecutor path) keep the
      // canonical walk, devirtualized onto this final class.
      return WalkPageElements(this, &stats_, port, std::move(page),
                              tick);
    }
    return FilterPageInPlace(port, std::move(page), tick,
                             [this, port](const Tuple& tuple) {
                               return Admit(port, tuple);
                             });
  }

  const PaceInputStats& input_stats(int port) const {
    return per_input_[static_cast<size_t>(port)];
  }
  TimeMs high_watermark() const { return hwm_; }
  uint64_t feedback_rounds() const { return feedback_rounds_; }

 private:
  /// The PACE policy decision for one tuple: account it, advance the
  /// high watermark, classify timely/late, and fire feedback on
  /// enforced drops. Returns whether the tuple flows downstream.
  /// Shared verbatim by the element and paged paths.
  bool Admit(int port, const Tuple& tuple) {
    if (guards_.Blocks(tuple)) {
      ++stats_.input_guard_drops;
      return false;
    }
    auto& acct = per_input_[static_cast<size_t>(port)];
    ++acct.tuples;

    Result<int64_t> ts = tuple.value(options_.ts_attr).AsInt64();
    if (!ts.ok()) return true;  // non-temporal tuple: pass unjudged
    if (ts.value() > hwm_) hwm_ = ts.value();

    const bool too_late = hwm_ - ts.value() > options_.tolerance_ms;
    if (!too_late) {
      ++acct.timely;
      return true;
    }
    ++acct.late;
    if (options_.mode == PaceMode::kUnionOnly) {
      return true;  // baseline: late tuples still flow (Fig. 5)
    }
    ++acct.dropped;
    if (options_.mode == PaceMode::kDropAndFeedback) {
      MaybeSendFeedback();
    }
    return false;
  }

  void MaybeSendFeedback() {
    TimeMs bound = hwm_ - options_.feedback_headroom_ms;
    if (bound <= last_feedback_bound_ + options_.feedback_min_advance_ms) {
      return;
    }
    last_feedback_bound_ = bound;
    ++feedback_rounds_;
    // ¬[*,...,≤bound,...,*]: "tuples at or before `bound` are being
    // ignored; their production should be avoided" (Example 3).
    PunctPattern p =
        PunctPattern::AllWildcard(output_schema(0)->num_fields());
    p = p.With(options_.ts_attr,
               AttrPattern::Le(Value::Timestamp(bound)));
    const std::vector<int>& targets = options_.feedback_inputs;
    if (targets.empty()) {
      for (int i = 0; i < num_inputs(); ++i) {
        SendFeedback(i, FeedbackPunctuation::Assumed(p));
      }
    } else {
      for (int i : targets) {
        SendFeedback(i, FeedbackPunctuation::Assumed(p));
      }
    }
  }

  PaceOptions options_;
  std::vector<PaceInputStats> per_input_;
  TimeMs hwm_ = INT64_MIN / 2;
  TimeMs last_feedback_bound_ = INT64_MIN / 2;
  uint64_t feedback_rounds_ = 0;
};

}  // namespace nstream

#endif  // NSTREAM_OPS_PACE_H_
