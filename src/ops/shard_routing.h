// Shard routing: the one hash-and-place decision shared by everything
// on either side of a partition boundary — the Exchange placing
// tuples, the ShardMerge deciding which shard owns a key-pinned
// punctuation, and the join's debug tripwire verifying it was fed the
// right slice. Kept free of operator types so operators can agree on
// routing without depending on each other.

#ifndef NSTREAM_OPS_SHARD_ROUTING_H_
#define NSTREAM_OPS_SHARD_ROUTING_H_

#include <cstdint>
#include <vector>

#include "punct/punct_pattern.h"
#include "types/tuple.h"

namespace nstream {

/// The routing hash: splitmix64-finalized Tuple::HashSubset over the
/// partition keys. Deliberately wid-free (unlike the join's table
/// hash) so every window of a key lands on the same shard.
inline uint64_t ShardRoutingHash(const Tuple& t,
                                 const std::vector<int>& keys) {
  uint64_t h = static_cast<uint64_t>(t.HashSubset(keys));
  h ^= h >> 30;
  h *= 0xbf58476d1ce4e5b9ULL;
  h ^= h >> 27;
  h *= 0x94d049bb133111ebULL;
  h ^= h >> 31;
  return h;
}

/// Shard = hash prefix, mapped onto [0, num_partitions) with a
/// multiply-shift over the top 32 bits — no modulo bias, any fan-out
/// up to 2^32, and the placement stays stable if the join's table-hash
/// scheme ever changes.
inline int ShardOfRoutingHash(uint64_t h, int num_partitions) {
  return static_cast<int>((h >> 32) *
                              static_cast<uint64_t>(num_partitions) >>
                          32);
}

/// Shard owning every tuple a pattern can match, if the pattern pins
/// each partition key with '='; -1 otherwise. A subset with an owner
/// lives entirely on that shard: the owner's claims about it settle
/// the whole stream, and any other shard's claims about it are
/// vacuous.
inline int PatternOwnerShard(const PunctPattern& pattern,
                             const std::vector<int>& partition_keys,
                             int num_partitions) {
  if (partition_keys.empty()) return -1;
  Tuple probe;
  probe.Reserve(static_cast<size_t>(pattern.arity()));
  for (int i = 0; i < pattern.arity(); ++i) probe.Append(Value::Null());
  for (int k : partition_keys) {
    if (k < 0 || k >= pattern.arity()) return -1;
    const AttrPattern& ap = pattern.attr(k);
    if (ap.op() != PatternOp::kEq) return -1;
    probe.mutable_value(k) = ap.operand();
  }
  return ShardOfRoutingHash(ShardRoutingHash(probe, partition_keys),
                            num_partitions);
}

}  // namespace nstream

#endif  // NSTREAM_OPS_SHARD_ROUTING_H_
