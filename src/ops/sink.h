// Sinks. CollectorSink records result tuples with their output times
// (the raw data behind Figs. 5/6), optionally performs per-tuple
// "client work" (the speed-map renderer of Experiment 2), and can act
// as an application-side feedback *producer*: a driver callback
// inspects each result and may issue feedback punctuation upstream —
// the event-driven source of §3.3 (the viewer zooming the speed map).

#ifndef NSTREAM_OPS_SINK_H_
#define NSTREAM_OPS_SINK_H_

#include <functional>
#include <string>
#include <vector>

#include "exec/operator.h"

namespace nstream {

struct CollectedTuple {
  Tuple tuple;
  TimeMs out_ms = 0;  // system time at which the sink saw it
};

struct CollectorSinkOptions {
  // Keep tuples in memory (disable for the 1M-tuple benches).
  bool record_tuples = true;
  // Virtual cost charged per consumed tuple (SimExecutor).
  double charge_ms_per_tuple = 0.0;
  // Real CPU work per consumed tuple (wall-clock benches): iterations
  // of a checksum loop standing in for rendering a map segment.
  int work_iters_per_tuple = 0;
};

class CollectorSink final : public Operator {
 public:
  /// Driver: called for every tuple; returned feedback (if any) is sent
  /// upstream, modelling an interactive application.
  using FeedbackDriver = std::function<std::vector<FeedbackPunctuation>(
      const Tuple&, TimeMs now)>;

  explicit CollectorSink(std::string name,
                         CollectorSinkOptions options = {},
                         FeedbackDriver driver = nullptr)
      : Operator(std::move(name), 1, 0),
        options_(options),
        driver_(std::move(driver)) {}

  Status ProcessTuple(int, const Tuple& tuple) override {
    if (options_.charge_ms_per_tuple > 0) {
      ctx()->ChargeMs(options_.charge_ms_per_tuple);
    }
    if (options_.work_iters_per_tuple > 0) {
      // Deterministic busy work the optimizer cannot elide.
      for (int i = 0; i < options_.work_iters_per_tuple; ++i) {
        checksum_ = checksum_ * 6364136223846793005ULL + 1442695040888963407ULL;
      }
    }
    ++consumed_;
    if (options_.record_tuples) {
      collected_.push_back({tuple, ctx()->NowMs()});
    }
    if (driver_) {
      for (FeedbackPunctuation& fb : driver_(tuple, ctx()->NowMs())) {
        SendFeedback(0, std::move(fb));
      }
    }
    return Status::OK();
  }

  /// Tight batch walk. The sink terminates every pipeline, so the
  /// per-element virtual dispatch of the default page walk shows up
  /// directly in end-to-end numbers; walking on the concrete final
  /// type devirtualizes and inlines the per-element calls.
  Status ProcessPage(int port, Page&& page, TimeMs* tick) override {
    return WalkPageElements(this, &stats_, port, std::move(page), tick);
  }

  Status ProcessPunctuation(int, const Punctuation&) override {
    ++stats_.puncts_in;
    return Status::OK();
  }

  uint64_t consumed() const { return consumed_; }
  const std::vector<CollectedTuple>& collected() const {
    return collected_;
  }
  uint64_t checksum() const { return checksum_; }

 private:
  CollectorSinkOptions options_;
  FeedbackDriver driver_;
  std::vector<CollectedTuple> collected_;
  uint64_t consumed_ = 0;
  uint64_t checksum_ = 0;
};

}  // namespace nstream

#endif  // NSTREAM_OPS_SINK_H_
