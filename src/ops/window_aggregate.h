// WindowAggregate: grouped window aggregation (COUNT / SUM / AVG / MAX
// / MIN) in the WID/OOP style — state is keyed by (window-id, group),
// results are produced and state purged when embedded punctuation
// closes windows, and arrival order is irrelevant.
//
// This operator carries the paper's richest feedback characterization:
//   * Table 1 (COUNT) rows, generalized by monotonicity to SUM/MAX/MIN
//     via core/aggregate_feedback;
//   * the §3.5 AVERAGE example (non-monotone ⇒ output guard only, with
//     the "window 4 at partial 51" purge pitfall avoided);
//   * the §3.5 MAX example (purge matching partials + tombstones so a
//     late value-40 tuple cannot recreate a purged window);
//   * demanded punctuation (§3.4): unblock and emit partial results;
//   * window-aware upstream propagation that respects Example 2's
//     sliding-window pitfall (a tuple feeds several windows).
//
// Output schema: (window_end:timestamp, group attrs..., agg).

#ifndef NSTREAM_OPS_WINDOW_AGGREGATE_H_
#define NSTREAM_OPS_WINDOW_AGGREGATE_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/aggregate_feedback.h"
#include "core/feedback_policy.h"
#include "core/guards.h"
#include "exec/operator.h"
#include "ops/window.h"

namespace nstream {

enum class AggKind : uint8_t { kCount = 0, kSum, kAvg, kMax, kMin };

const char* AggKindName(AggKind k);

struct WindowAggregateOptions {
  int ts_attr = 0;               // input timestamp attribute
  std::vector<int> group_attrs;  // input grouping attributes
  int agg_attr = -1;             // input value attribute (-1: COUNT(*))
  AggKind kind = AggKind::kAvg;
  WindowSpec window;
  // Declares SUM's inputs non-negative, making it monotone
  // non-decreasing for feedback purposes.
  bool assume_non_negative = false;
  FeedbackPolicy feedback_policy = FeedbackPolicy::kExploitAndPropagate;
  // Cap on per-feedback derived propagations (the "propagate G" row).
  int max_propagations = 64;
  // Optional virtual cost per state update (SimExecutor experiments).
  double charge_ms_per_update = 0.0;
  // Optional real CPU work per state update (wall-clock benches):
  // calibrates the per-update cost to the reference engine's
  // constant factors (see EXPERIMENTS.md). 0 = raw C++ hash update.
  int work_iters_per_update = 0;
};

class WindowAggregate final : public Operator {
 public:
  WindowAggregate(std::string name, WindowAggregateOptions options);
  ~WindowAggregate() override;

  Status InferSchemas() override;
  Status ProcessTuple(int port, const Tuple& tuple) override;
  Status ProcessPunctuation(int port, const Punctuation& punct) override;
  Status OnAllInputsEos() override;
  Status ProcessFeedback(int out_port,
                         const FeedbackPunctuation& fb) override;

  AggMonotonicity monotonicity() const;

  // Introspection for tests/benches.
  size_t state_size() const;
  size_t tombstone_count() const;
  const GuardSet& output_guards() const { return output_guards_; }
  const GuardSet& group_guards() const { return group_guards_; }
  uint64_t partials_emitted() const { return partials_emitted_; }
  uint64_t updates_applied() const { return updates_applied_; }
  uint64_t updates_skipped() const { return updates_skipped_; }

 private:
  struct Key;
  struct KeyHash;
  struct KeyEq;
  struct Partial;

  // Build the output tuple for a state entry (agg from the partial).
  Tuple MakeOutput(const Key& key, const Partial& partial) const;
  // Key-only probe tuple (agg position NULL) for group-guard checks.
  Tuple MakeProbe(const Key& key) const;
  // Allocation-free input-guard check against the raw tuple values.
  bool GroupGuardBlocks(int64_t wid, const Tuple& tuple) const;
  void EmitResult(const Key& key, const Partial& partial);
  // Close every window with id <= last_closable; emit + purge.
  void CloseThrough(int64_t last_closable);
  Status HandleAssumed(const PunctPattern& f);
  Status HandleDesired(const FeedbackPunctuation& fb);
  Status HandleDemanded(const FeedbackPunctuation& fb);
  // Map an output-schema pattern to input-schema terms; nullopt when
  // no sound mapping exists.
  std::optional<PunctPattern> MapToInput(const PunctPattern& f) const;

  WindowAggregateOptions options_;
  int num_groups_ = 0;  // == options_.group_attrs.size()
  int agg_out_idx_ = 0;

  std::unique_ptr<
      std::unordered_map<Key, Partial, KeyHash, KeyEq>>
      state_;
  std::unique_ptr<std::unordered_set<Key, KeyHash, KeyEq>> tombstones_;

  // Guards, both expressed over the OUTPUT schema. group_guards_ hold
  // patterns with wildcard agg (evaluated against key probes on the
  // input path); output_guards_ may constrain the aggregate value and
  // are evaluated at emission.
  GuardSet group_guards_;
  GuardSet output_guards_;
  // Patterns from implication-valid assumed feedback; partials are
  // re-checked against these on every update (the MAX ¬[*,≥50] case).
  std::vector<PunctPattern> purge_partial_patterns_;

  int64_t closed_through_ = INT64_MIN;
  uint64_t work_checksum_ = 0;
  uint64_t partials_emitted_ = 0;
  uint64_t updates_applied_ = 0;
  uint64_t updates_skipped_ = 0;
};

}  // namespace nstream

#endif  // NSTREAM_OPS_WINDOW_AGGREGATE_H_
