// WindowAggregate: grouped window aggregation (COUNT / SUM / AVG / MAX
// / MIN) in the WID/OOP style — state is keyed by (window-id, group),
// results are produced and state purged when embedded punctuation
// closes windows, and arrival order is irrelevant.
//
// This operator carries the paper's richest feedback characterization:
//   * Table 1 (COUNT) rows, generalized by monotonicity to SUM/MAX/MIN
//     via core/aggregate_feedback;
//   * the §3.5 AVERAGE example (non-monotone ⇒ output guard only, with
//     the "window 4 at partial 51" purge pitfall avoided);
//   * the §3.5 MAX example (purge matching partials + tombstones so a
//     late value-40 tuple cannot recreate a purged window);
//   * demanded punctuation (§3.4): unblock and emit partial results;
//   * window-aware upstream propagation that respects Example 2's
//     sliding-window pitfall (a tuple feeds several windows).
//
// Output schema: (window_end:timestamp, group attrs..., agg).

#ifndef NSTREAM_OPS_WINDOW_AGGREGATE_H_
#define NSTREAM_OPS_WINDOW_AGGREGATE_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/aggregate_feedback.h"
#include "core/feedback_policy.h"
#include "core/guards.h"
#include "exec/operator.h"
#include "ops/window.h"

namespace nstream {

enum class AggKind : uint8_t { kCount = 0, kSum, kAvg, kMax, kMin };

const char* AggKindName(AggKind k);

struct WindowAggregateOptions {
  int ts_attr = 0;               // input timestamp attribute
  std::vector<int> group_attrs;  // input grouping attributes
  int agg_attr = -1;             // input value attribute (-1: COUNT(*))
  AggKind kind = AggKind::kAvg;
  WindowSpec window;
  // Declares SUM's inputs non-negative, making it monotone
  // non-decreasing for feedback purposes.
  bool assume_non_negative = false;
  FeedbackPolicy feedback_policy = FeedbackPolicy::kExploitAndPropagate;
  // Cap on per-feedback derived propagations (the "propagate G" row).
  int max_propagations = 64;
  // Optional virtual cost per state update (SimExecutor experiments).
  double charge_ms_per_update = 0.0;
  // Optional real CPU work per state update (wall-clock benches):
  // calibrates the per-update cost to the reference engine's
  // constant factors (see EXPERIMENTS.md). 0 = raw C++ hash update.
  int work_iters_per_update = 0;
  // Page-at-a-time input (the join's run-bounded grouping reused):
  // runs of tuples between punctuation/EOS boundaries are grouped by
  // (window, group-key) hash — the key vector is built and the state
  // map probed once per distinct group per run instead of per tuple.
  // Off = the per-element walk, the A/B baseline for tests.
  bool page_batched_input = true;
  // Results staged per output page under page-driven executors; the
  // staging page's arena backs the result tuples (zero heap
  // allocations per result). Same knob family as JoinOptions.
  int output_page_size = 256;
};

class WindowAggregate final : public Operator {
 public:
  WindowAggregate(std::string name, WindowAggregateOptions options);
  ~WindowAggregate() override;

  Status InferSchemas() override;
  Status Open(ExecContext* ctx) override;
  Status ProcessTuple(int port, const Tuple& tuple) override;
  /// Page-at-a-time path: tuple runs bounded by punctuation/EOS are
  /// admitted (ts/value/guard checks) in one pass, grouped by
  /// (window, group) hash with a stabilized sort, and applied with
  /// one state-map probe per distinct group. Falls back to the
  /// element walk while purge-on-partial feedback patterns are active
  /// (those perform per-update state surgery) or when
  /// options_.page_batched_input is false. Semantically aligned with
  /// ProcessTuple — the randomized equivalence test compares the two.
  Status ProcessPage(int port, Page&& page, TimeMs* tick) override;
  Status ProcessPunctuation(int port, const Punctuation& punct) override;
  Status OnAllInputsEos() override;
  Status ProcessFeedback(int out_port,
                         const FeedbackPunctuation& fb) override;

  /// Per-window partial state (all five aggregate kinds share the one
  /// Partial), tombstones, both guard sets, purge-on-partial feedback
  /// patterns, window progress, and counters. Hash-map entries are
  /// written sorted by serialized key bytes so the stream is canonical.
  Status SnapshotState(SnapshotWriter* w) override;
  Status RestoreState(SnapshotReader* r) override;

  AggMonotonicity monotonicity() const;

  // Introspection for tests/benches.
  size_t state_size() const;
  size_t tombstone_count() const;
  const GuardSet& output_guards() const { return output_guards_; }
  const GuardSet& group_guards() const { return group_guards_; }
  uint64_t partials_emitted() const { return partials_emitted_; }
  uint64_t updates_applied() const { return updates_applied_; }
  uint64_t updates_skipped() const { return updates_skipped_; }

 private:
  struct Key;
  struct KeyHash;
  struct KeyEq;
  struct Partial;
  // One admitted (tuple, window) pair of a batched input run.
  struct RunItem {
    uint32_t elem = 0;  // index into the page's element vector
    int64_t wid = 0;
    uint64_t hash = 0;  // (wid, group values) hash; verified on apply
    double v = 0;       // extracted aggregation input
  };

  // Build the output tuple for a state entry (agg from the partial),
  // bump-allocated from `arena` when staging paged output (null =
  // owned fallback, used by feedback matching and per-element paths).
  Tuple MakeOutput(const Key& key, const Partial& partial,
                   TupleArena* arena = nullptr) const;
  // Key-only probe tuple (agg position NULL) for group-guard checks.
  Tuple MakeProbe(const Key& key) const;
  // Allocation-free input-guard check against the raw tuple values.
  bool GroupGuardBlocks(int64_t wid, const Tuple& tuple) const;
  void EmitResult(const Key& key, const Partial& partial);
  // Batched equivalent of ProcessTuple over elems[begin, end).
  Status ProcessTupleRun(std::vector<StreamElement>& elems, size_t begin,
                         size_t end, TimeMs* tick);
  // The keyed state transition for one (tuple, window): tombstone
  // check, cost charge, partial update, purge-on-partial re-check.
  // Shared verbatim by ProcessTuple and the batched path's
  // hash-collision fallback.
  Status UpdateState(const Tuple& tuple, int64_t wid, double v);
  void ApplyPartial(Partial& p, double v);
  // Group hash of (wid, tuple's group attrs); agrees with KeyHash on
  // the Key the same pair would build (equal keys ⇒ equal hash).
  uint64_t HashKeyOf(int64_t wid, const Tuple& t) const;
  bool SameKey(const Key& key, int64_t wid, const Tuple& t) const;
  // Flush staged output results ahead of punctuation/EOS.
  void FlushOutput();
  // Close every window with id <= last_closable; emit + purge.
  void CloseThrough(int64_t last_closable);
  Status HandleAssumed(const PunctPattern& f);
  Status HandleDesired(const FeedbackPunctuation& fb);
  Status HandleDemanded(const FeedbackPunctuation& fb);
  // Map an output-schema pattern to input-schema terms; nullopt when
  // no sound mapping exists.
  std::optional<PunctPattern> MapToInput(const PunctPattern& f) const;

  WindowAggregateOptions options_;
  // Cached ExecContext::PagedEmissionPreferred() (per-context
  // constant; one virtual call in Open, not one per result).
  bool paged_emission_ = false;
  int num_groups_ = 0;  // == options_.group_attrs.size()
  int agg_out_idx_ = 0;

  std::unique_ptr<
      std::unordered_map<Key, Partial, KeyHash, KeyEq>>
      state_;
  std::unique_ptr<std::unordered_set<Key, KeyHash, KeyEq>> tombstones_;

  // Guards, both expressed over the OUTPUT schema. group_guards_ hold
  // patterns with wildcard agg (evaluated against key probes on the
  // input path); output_guards_ may constrain the aggregate value and
  // are evaluated at emission.
  GuardSet group_guards_;
  GuardSet output_guards_;
  // Patterns from implication-valid assumed feedback; partials are
  // re-checked against these on every update (the MAX ¬[*,≥50] case).
  std::vector<PunctPattern> purge_partial_patterns_;

  // Result staging for page-granular emission (see output_page_size).
  Page out_staged_;
  // Scratch for the batched input's sort-by-hash pass (reused across
  // pages so the steady-state hot path does not allocate).
  std::vector<RunItem> run_scratch_;

  int64_t closed_through_ = INT64_MIN;
  uint64_t work_checksum_ = 0;
  uint64_t partials_emitted_ = 0;
  uint64_t updates_applied_ = 0;
  uint64_t updates_skipped_ = 0;
};

}  // namespace nstream

#endif  // NSTREAM_OPS_WINDOW_AGGREGATE_H_
