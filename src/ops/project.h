// Project (π): positional projection. Demonstrates schema-mapped
// feedback relaying: feedback over the output schema is rewritten into
// input-schema terms via the projection's SchemaMap before being
// exploited or propagated (§4.2).

#ifndef NSTREAM_OPS_PROJECT_H_
#define NSTREAM_OPS_PROJECT_H_

#include <string>
#include <vector>

#include "core/feedback_policy.h"
#include "core/guards.h"
#include "core/propagation.h"
#include "core/schema_map.h"
#include "exec/operator.h"

namespace nstream {

struct ProjectOptions {
  FeedbackPolicy feedback_policy = FeedbackPolicy::kExploitAndPropagate;
};

class Project final : public Operator {
 public:
  /// `keep` lists input attribute positions, in output order.
  Project(std::string name, std::vector<int> keep,
          ProjectOptions options = {})
      : Operator(std::move(name), 1, 1),
        keep_(std::move(keep)),
        options_(options) {}

  Status InferSchemas() override {
    NSTREAM_ASSIGN_OR_RETURN(SchemaPtr out,
                             input_schema(0)->Project(keep_));
    SetOutputSchema(0, std::move(out));
    map_ = SchemaMap::Projection(keep_);
    return Status::OK();
  }

  Status ProcessTuple(int, const Tuple& tuple) override {
    if (input_guards_.Blocks(tuple)) {
      ++stats_.input_guard_drops;
      return Status::OK();
    }
    // Build the projection in the open output page's arena when the
    // executor exposes one (null on the Sim path / foreign contexts —
    // the owned fallback): per-tuple emission then still allocates
    // nothing on the heap.
    Tuple out = Projected(tuple, ctx()->OpenPageArena(0));
    Emit(0, std::move(out));
    return Status::OK();
  }

  Status ProcessPage(int port, Page&& page, TimeMs* tick) override {
    // Stateless projection: batch loop, one virtual call per page.
    if (!ctx()->PagedEmissionPreferred()) {
      return WalkPageElements(this, &stats_, port, std::move(page),
                              tick);
    }
    // Columnar input with no active guards: projection is a
    // column-pointer remap — O(output arity) total, zero per-row
    // work — and the page forwards as is, arena and all.
    if (page.is_columnar() && input_guards_.empty()) {
      const size_t n = page.size();
      if (tick) *tick += static_cast<TimeMs>(n);
      stats_.tuples_in += n;
      page.columnar()->ProjectColumns(keep_);
      if (n > 0) EmitPage(0, std::move(page));
      return Status::OK();
    }
    page.EnsureRowLayout();  // guard-active columnar input: row walk
    // Paged path: results stage COLUMN-WISE when the columnar layout
    // is on (per attribute, flat slot stores into contiguous column
    // arrays — no per-tuple span setup, no StreamElement variant);
    // otherwise projected tuples bump-allocate row-wise from the
    // staged page's arena as before. Either way the staged page
    // flushes before any punctuation/EOS so results never overtake
    // progress claims.
    const uint32_t ncols = static_cast<uint32_t>(keep_.size());
    const uint32_t cap = static_cast<uint32_t>(page.size());
    Page out;
    ColumnarBlock* blk = nullptr;
    bool opened = false;
    auto open_out = [&]() {
      if (opened) return;
      opened = true;
      if (PageColumnar::enabled() && ncols > 0 && cap > 0) {
        blk = out.BeginColumnar(ncols, cap);
      }
      if (blk == nullptr) out.Reserve(cap);
    };
    auto flush_out = [&]() {
      if (!out.empty()) ctx()->EmitPage(0, std::move(out));
      out = Page();
      blk = nullptr;
      opened = false;
    };
    for (StreamElement& e : page.mutable_elements()) {
      if (tick) ++*tick;
      if (e.is_tuple()) {
        ++stats_.tuples_in;
        const Tuple& tuple = e.tuple();
        if (input_guards_.Blocks(tuple)) {
          ++stats_.input_guard_drops;
          continue;
        }
        open_out();
        if (blk != nullptr) {
          const uint32_t r = blk->AddRow(tuple.id(), tuple.arrival_ms());
          for (uint32_t c = 0; c < ncols; ++c) {
            blk->Set(c, r, tuple.value(keep_[c]));
          }
        } else {
          Tuple pt = Projected(tuple, out.arena());
          out.Add(StreamElement::OfTuple(std::move(pt)));
        }
        ++stats_.tuples_out;
      } else {
        flush_out();
        if (e.is_punct()) {
          NSTREAM_RETURN_NOT_OK(ProcessPunctuation(port, e.punct()));
        } else {
          NSTREAM_RETURN_NOT_OK(ProcessEos(port));
        }
      }
    }
    flush_out();
    return Status::OK();
  }

  Status ProcessPunctuation(int, const Punctuation& punct) override {
    ++stats_.puncts_in;
    input_guards_.ExpireCovered(punct);
    // A punctuation survives projection only if the dropped attributes
    // were unconstrained; otherwise the completeness claim would
    // silently widen (e.g. [a<=5, b=3] -> [a<=5] is *wrong*).
    for (int idx : punct.pattern().ConstrainedIndices()) {
      bool kept = false;
      for (int k : keep_) {
        if (k == idx) {
          kept = true;
          break;
        }
      }
      if (!kept) return Status::OK();  // drop the punctuation
    }
    Result<PunctPattern> projected = punct.pattern().Project(keep_);
    if (projected.ok()) {
      EmitPunct(0, Punctuation(projected.MoveValue()));
    }
    return Status::OK();
  }

  Status ProcessFeedback(int, const FeedbackPunctuation& fb) override {
    if (options_.feedback_policy == FeedbackPolicy::kIgnore ||
        fb.pattern().arity() != output_schema(0)->num_fields()) {
      ++stats_.feedback_ignored;
      return Status::OK();
    }
    // Rewrite the output-schema pattern into input-schema terms. For a
    // projection every output attribute is carried, so this always
    // succeeds (Definition 2 trivially holds).
    Result<PunctPattern> mapped = DeriveForInput(
        fb.pattern(), map_, 0, input_schema(0)->num_fields());
    if (!mapped.ok()) {
      ++stats_.feedback_ignored;
      return Status::OK();
    }
    switch (fb.intent()) {
      case FeedbackIntent::kAssumed:
        if (PolicyAtLeast(options_.feedback_policy,
                          FeedbackPolicy::kExploit)) {
          input_guards_.Add(mapped.value());
          ctx()->PurgeInput(0, mapped.value());
        }
        break;
      case FeedbackIntent::kDesired:
      case FeedbackIntent::kDemanded:
        ctx()->PrioritizeInput(0, mapped.value());
        break;
    }
    if (PolicyAtLeast(options_.feedback_policy,
                      FeedbackPolicy::kExploitAndPropagate)) {
      FeedbackPunctuation up(fb.intent(), mapped.MoveValue());
      up.set_origin_op(fb.origin_op());
      up.set_hop_count(fb.hop_count());
      RelayFeedback(0, std::move(up));
    }
    return Status::OK();
  }

  const GuardSet& input_guards() const { return input_guards_; }

 private:
  Tuple Projected(const Tuple& tuple, TupleArena* arena) const {
    Tuple out(arena, keep_.size());
    for (int i : keep_) out.Append(tuple.value(i));
    out.set_id(tuple.id());
    out.set_arrival_ms(tuple.arrival_ms());
    return out;
  }

  std::vector<int> keep_;
  ProjectOptions options_;
  SchemaMap map_{1, 0};
  GuardSet input_guards_;
};

}  // namespace nstream

#endif  // NSTREAM_OPS_PROJECT_H_
