// Project (π): positional projection. Demonstrates schema-mapped
// feedback relaying: feedback over the output schema is rewritten into
// input-schema terms via the projection's SchemaMap before being
// exploited or propagated (§4.2).

#ifndef NSTREAM_OPS_PROJECT_H_
#define NSTREAM_OPS_PROJECT_H_

#include <string>
#include <vector>

#include "core/feedback_policy.h"
#include "core/guards.h"
#include "core/propagation.h"
#include "core/schema_map.h"
#include "exec/operator.h"

namespace nstream {

struct ProjectOptions {
  FeedbackPolicy feedback_policy = FeedbackPolicy::kExploitAndPropagate;
};

class Project final : public Operator {
 public:
  /// `keep` lists input attribute positions, in output order.
  Project(std::string name, std::vector<int> keep,
          ProjectOptions options = {})
      : Operator(std::move(name), 1, 1),
        keep_(std::move(keep)),
        options_(options) {}

  Status InferSchemas() override {
    NSTREAM_ASSIGN_OR_RETURN(SchemaPtr out,
                             input_schema(0)->Project(keep_));
    SetOutputSchema(0, std::move(out));
    map_ = SchemaMap::Projection(keep_);
    return Status::OK();
  }

  Status ProcessTuple(int, const Tuple& tuple) override {
    if (input_guards_.Blocks(tuple)) {
      ++stats_.input_guard_drops;
      return Status::OK();
    }
    // Build the projection in the open output page's arena when the
    // executor exposes one (null on the Sim path / foreign contexts —
    // the owned fallback): per-tuple emission then still allocates
    // nothing on the heap.
    Tuple out = Projected(tuple, ctx()->OpenPageArena(0));
    Emit(0, std::move(out));
    return Status::OK();
  }

  Status ProcessPage(int port, Page&& page, TimeMs* tick) override {
    // Stateless projection: batch loop, one virtual call per page.
    if (!ctx()->PagedEmissionPreferred()) {
      return WalkPageElements(this, &stats_, port, std::move(page),
                              tick);
    }
    // Paged path: projected tuples bump-allocate from the staged
    // output page's arena (zero heap traffic per result) and make the
    // queue hop as one page. The staged page flushes before any
    // punctuation/EOS so results never overtake progress claims.
    Page out;
    out.Reserve(page.size());
    for (StreamElement& e : page.mutable_elements()) {
      if (tick) ++*tick;
      if (e.is_tuple()) {
        ++stats_.tuples_in;
        const Tuple& tuple = e.tuple();
        if (input_guards_.Blocks(tuple)) {
          ++stats_.input_guard_drops;
          continue;
        }
        Tuple pt = Projected(tuple, out.arena());
        ++stats_.tuples_out;
        out.Add(StreamElement::OfTuple(std::move(pt)));
      } else {
        if (!out.empty()) {
          ctx()->EmitPage(0, std::move(out));
          out = Page();
        }
        if (e.is_punct()) {
          NSTREAM_RETURN_NOT_OK(ProcessPunctuation(port, e.punct()));
        } else {
          NSTREAM_RETURN_NOT_OK(ProcessEos(port));
        }
      }
    }
    if (!out.empty()) ctx()->EmitPage(0, std::move(out));
    return Status::OK();
  }

  Status ProcessPunctuation(int, const Punctuation& punct) override {
    ++stats_.puncts_in;
    input_guards_.ExpireCovered(punct);
    // A punctuation survives projection only if the dropped attributes
    // were unconstrained; otherwise the completeness claim would
    // silently widen (e.g. [a<=5, b=3] -> [a<=5] is *wrong*).
    for (int idx : punct.pattern().ConstrainedIndices()) {
      bool kept = false;
      for (int k : keep_) {
        if (k == idx) {
          kept = true;
          break;
        }
      }
      if (!kept) return Status::OK();  // drop the punctuation
    }
    Result<PunctPattern> projected = punct.pattern().Project(keep_);
    if (projected.ok()) {
      EmitPunct(0, Punctuation(projected.MoveValue()));
    }
    return Status::OK();
  }

  Status ProcessFeedback(int, const FeedbackPunctuation& fb) override {
    if (options_.feedback_policy == FeedbackPolicy::kIgnore ||
        fb.pattern().arity() != output_schema(0)->num_fields()) {
      ++stats_.feedback_ignored;
      return Status::OK();
    }
    // Rewrite the output-schema pattern into input-schema terms. For a
    // projection every output attribute is carried, so this always
    // succeeds (Definition 2 trivially holds).
    Result<PunctPattern> mapped = DeriveForInput(
        fb.pattern(), map_, 0, input_schema(0)->num_fields());
    if (!mapped.ok()) {
      ++stats_.feedback_ignored;
      return Status::OK();
    }
    switch (fb.intent()) {
      case FeedbackIntent::kAssumed:
        if (PolicyAtLeast(options_.feedback_policy,
                          FeedbackPolicy::kExploit)) {
          input_guards_.Add(mapped.value());
          ctx()->PurgeInput(0, mapped.value());
        }
        break;
      case FeedbackIntent::kDesired:
      case FeedbackIntent::kDemanded:
        ctx()->PrioritizeInput(0, mapped.value());
        break;
    }
    if (PolicyAtLeast(options_.feedback_policy,
                      FeedbackPolicy::kExploitAndPropagate)) {
      FeedbackPunctuation up(fb.intent(), mapped.MoveValue());
      up.set_origin_op(fb.origin_op());
      up.set_hop_count(fb.hop_count());
      RelayFeedback(0, std::move(up));
    }
    return Status::OK();
  }

  const GuardSet& input_guards() const { return input_guards_; }

 private:
  Tuple Projected(const Tuple& tuple, TupleArena* arena) const {
    Tuple out(arena, keep_.size());
    for (int i : keep_) out.Append(tuple.value(i));
    out.set_id(tuple.id());
    out.set_arrival_ms(tuple.arrival_ms());
    return out;
  }

  std::vector<int> keep_;
  ProjectOptions options_;
  SchemaMap map_{1, 0};
  GuardSet input_guards_;
};

}  // namespace nstream

#endif  // NSTREAM_OPS_PROJECT_H_
