// VectorSource: replays a pre-materialized sequence of timed stream
// elements (tuples and embedded punctuation). All workload generators
// in src/workload produce TimedElement sequences consumed through this
// operator, keeping generators independent of the engine.

#ifndef NSTREAM_OPS_VECTOR_SOURCE_H_
#define NSTREAM_OPS_VECTOR_SOURCE_H_

#include <string>
#include <vector>

#include "exec/operator.h"
#include "recovery/snapshot.h"

namespace nstream {

/// One element plus the system time at which it enters the engine.
struct TimedElement {
  TimeMs arrival_ms = 0;
  StreamElement element;

  static TimedElement OfTuple(TimeMs at, Tuple t) {
    return {at, StreamElement::OfTuple(std::move(t))};
  }
  static TimedElement OfPunct(TimeMs at, Punctuation p) {
    return {at, StreamElement::OfPunct(std::move(p))};
  }
};

class VectorSource final : public SourceOperator {
 public:
  VectorSource(std::string name, SchemaPtr schema,
               std::vector<TimedElement> elements)
      : SourceOperator(std::move(name)),
        elements_(std::move(elements)) {
    SetOutputSchema(0, std::move(schema));
    // Assign stable ids to tuples lacking one (Fig. 5/6 plots need
    // per-tuple identity).
    int64_t next_id = 1;
    for (TimedElement& te : elements_) {
      if (te.element.is_tuple() && te.element.tuple().id() == 0) {
        te.element.mutable_tuple().set_id(next_id++);
      }
    }
  }

  Status InferSchemas() override { return Status::OK(); }

  std::optional<TimeMs> NextArrivalMs() override {
    if (pos_ >= elements_.size()) return std::nullopt;
    return elements_[pos_].arrival_ms;
  }

  Status ProduceNext() override {
    if (pos_ >= elements_.size()) {
      return Status::FailedPrecondition("source exhausted");
    }
    TimedElement& te = elements_[pos_++];
    switch (te.element.kind()) {
      case ElementKind::kTuple: {
        Tuple t = std::move(te.element.mutable_tuple());
        t.set_arrival_ms(te.arrival_ms);
        Emit(0, std::move(t));
        break;
      }
      case ElementKind::kPunctuation:
        EmitPunct(0, te.element.punct());
        break;
      case ElementKind::kEndOfStream:
        break;  // executors synthesize EOS at exhaustion
    }
    return Status::OK();
  }

  size_t remaining() const { return elements_.size() - pos_; }
  size_t position() const { return pos_; }

  /// Replay-from-offset recovery: the checkpoint records only the emit
  /// offset. A recovered plan is rebuilt with the SAME element vector
  /// (workload generators are deterministic), so restoring `pos_`
  /// resumes emission exactly after the last element the checkpoint's
  /// barrier cut off — elements emitted after the checkpoint but
  /// before the crash are re-emitted (at-least-once).
  Status SnapshotState(SnapshotWriter* w) override {
    NSTREAM_RETURN_NOT_OK(Operator::SnapshotState(w));
    w->WriteU64(pos_);
    return Status::OK();
  }
  Status RestoreState(SnapshotReader* r) override {
    NSTREAM_RETURN_NOT_OK(Operator::RestoreState(r));
    uint64_t pos = 0;
    NSTREAM_RETURN_NOT_OK(r->ReadU64(&pos));
    if (pos > elements_.size()) {
      return Status::InvalidArgument(
          name() + ": snapshot offset " + std::to_string(pos) +
          " exceeds element count " + std::to_string(elements_.size()));
    }
    pos_ = static_cast<size_t>(pos);
    return Status::OK();
  }

 private:
  std::vector<TimedElement> elements_;
  size_t pos_ = 0;
};

}  // namespace nstream

#endif  // NSTREAM_OPS_VECTOR_SOURCE_H_
