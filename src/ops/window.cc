#include "ops/window.h"

namespace nstream {

Result<AttrPattern> MapWindowEndToTimestamp(const AttrPattern& window_end,
                                            const WindowSpec& spec) {
  // A tuple with timestamp t contributes to windows ending in
  //   ( t, t + range ]   stepped by slide  (ends are w*slide + range).
  // Its earliest window end is strictly greater than t; its latest
  // window end is FloorDiv(t, slide)*slide + range.
  Result<int64_t> bound = window_end.operand().AsInt64();
  switch (window_end.op()) {
    case PatternOp::kLe:
    case PatternOp::kLt: {
      // Suppress a tuple only if its LATEST window end satisfies the
      // bound: latest_end = floor(t/slide)*slide + range  (op)  W
      //   ⇔ floor(t/slide) (op') (W - range)/slide
      // For kLe: floor(t/slide) <= floor((W-range)/slide)
      //   ⇔ t < (floor((W-range)/slide)+1)*slide.
      if (!bound.ok()) return bound.status();
      int64_t w = bound.value();
      if (window_end.op() == PatternOp::kLt) w -= 1;  // ≤ (W-1)
      int64_t ts_exclusive =
          (WindowSpec::FloorDiv(w - spec.range_ms, spec.slide_ms) + 1) *
          spec.slide_ms;
      return AttrPattern::Lt(Value::Timestamp(ts_exclusive));
    }
    case PatternOp::kGe:
    case PatternOp::kGt: {
      // Suppress a tuple only if its EARLIEST window end satisfies the
      // bound. Earliest end = (floor((t-range)/slide)+1)*slide + range
      // > t, so "t >= W" is a sound (conservative) condition for
      // every end >= W (ends exceed t). For kGt likewise.
      if (!bound.ok()) return bound.status();
      return AttrPattern::Ge(Value::Timestamp(bound.value()));
    }
    case PatternOp::kRange: {
      // [lo .. hi] on window end: suppress a tuple only if ALL its
      // windows end within the range — earliest end >= lo (implied by
      // ts >= lo, since every end exceeds ts) and latest end <= hi
      // (the kLe mapping).
      Result<int64_t> lo = window_end.operand().AsInt64();
      Result<int64_t> hi = window_end.hi().AsInt64();
      if (!lo.ok()) return lo.status();
      if (!hi.ok()) return hi.status();
      int64_t ts_exclusive =
          (WindowSpec::FloorDiv(hi.value() - spec.range_ms,
                                spec.slide_ms) +
           1) *
          spec.slide_ms;
      if (ts_exclusive - 1 < lo.value()) {
        return Status::Unsupported(
            "window-end range maps to an empty timestamp range");
      }
      return AttrPattern::Range(Value::Timestamp(lo.value()),
                                Value::Timestamp(ts_exclusive - 1));
    }
    case PatternOp::kEq: {
      // Only sound for tumbling windows, where a tuple has exactly one
      // window: end == W ⇔ ts ∈ [W-range, W).
      if (!spec.tumbling()) {
        return Status::Unsupported(
            "window-end equality cannot be mapped under sliding "
            "windows (tuples span several windows)");
      }
      if (!bound.ok()) return bound.status();
      return AttrPattern::Range(
          Value::Timestamp(bound.value() - spec.range_ms),
          Value::Timestamp(bound.value() - 1));
    }
    default:
      return Status::Unsupported(
          "window-end constraint shape cannot be soundly mapped to the "
          "input timestamp");
  }
}

}  // namespace nstream
