#include "ops/exchange.h"

#include <utility>

#include "common/string_util.h"

namespace nstream {

namespace {

/// Coalescing-map key: intent glyph (or 'P' for embedded punctuation)
/// plus the rendered pattern. Rendering is canonical for identical
/// patterns, and this path is control-plane cold.
std::string PendingKey(char tag, const PunctPattern& pattern) {
  std::string key(1, tag);
  key += pattern.ToString();
  return key;
}

char IntentTag(FeedbackIntent intent) {
  switch (intent) {
    case FeedbackIntent::kAssumed:
      return 'A';
    case FeedbackIntent::kDesired:
      return 'D';
    case FeedbackIntent::kDemanded:
      return '!';
  }
  return '?';
}

}  // namespace

// ---------------------------------------------------------------------------
// Exchange
// ---------------------------------------------------------------------------

Exchange::Exchange(std::string name, int num_partitions,
                   ExchangeOptions options)
    : Operator(std::move(name), /*num_inputs=*/1, num_partitions),
      options_(std::move(options)),
      staged_(static_cast<size_t>(num_partitions)),
      routed_(static_cast<size_t>(num_partitions), 0),
      port_guards_(static_cast<size_t>(num_partitions)) {
  if (options_.stage_page_size <= 0) options_.stage_page_size = 1;
}

Status Exchange::InferSchemas() {
  if (num_outputs() < 1) {
    return Status::InvalidArgument(name() + ": needs >= 1 partition");
  }
  if (options_.partition_keys.empty()) {
    return Status::InvalidArgument(
        name() + ": partition_keys must not be empty");
  }
  for (int k : options_.partition_keys) {
    if (k < 0 || k >= input_schema(0)->num_fields()) {
      return Status::OutOfRange(StringPrintf(
          "%s: partition key %d out of range (arity %d)",
          name().c_str(), k, input_schema(0)->num_fields()));
    }
  }
  return Operator::InferSchemas();  // every output mirrors the input
}

Status Exchange::ProcessTuple(int, const Tuple& tuple) {
  if (input_guards_.Blocks(tuple)) {
    ++stats_.input_guard_drops;
    return Status::OK();
  }
  int shard = ShardOf(tuple);
  if (port_guards_[static_cast<size_t>(shard)].Blocks(tuple)) {
    ++stats_.output_guard_drops;
    return Status::OK();
  }
  ++routed_[static_cast<size_t>(shard)];
  Emit(shard, tuple);
  return Status::OK();
}

void Exchange::StageTuple(int shard, Tuple t) {
  Page& page = staged_[static_cast<size_t>(shard)];
  // A staging page outlives the input page it partitions, so a tuple
  // still backed by the input page's arena is re-homed (bump-copied)
  // into the staging page's own arena; owned tuples keep the free move.
  page.AddTuple(std::move(t));
  if (static_cast<int>(page.size()) >= options_.stage_page_size) {
    EmitPage(shard, std::move(page));
    page = Page();
  }
}

void Exchange::FlushStaged() {
  for (int s = 0; s < num_outputs(); ++s) {
    Page& page = staged_[static_cast<size_t>(s)];
    if (page.empty()) continue;
    EmitPage(s, std::move(page));
    page = Page();
  }
}

Status Exchange::ProcessPage(int port, Page&& page, TimeMs* tick) {
  page.EnsureRowLayout();  // shard routing moves tuples element-wise
  for (StreamElement& e : page.mutable_elements()) {
    if (tick) ++*tick;
    switch (e.kind()) {
      case ElementKind::kTuple: {
        ++stats_.tuples_in;
        Tuple& t = e.mutable_tuple();
        if (input_guards_.Blocks(t)) {
          ++stats_.input_guard_drops;
          break;
        }
        int shard = ShardOf(t);
        if (port_guards_[static_cast<size_t>(shard)].Blocks(t)) {
          ++stats_.output_guard_drops;
          break;
        }
        ++routed_[static_cast<size_t>(shard)];
        StageTuple(shard, std::move(t));
        break;
      }
      case ElementKind::kPunctuation:
        NSTREAM_RETURN_NOT_OK(ProcessPunctuation(port, e.punct()));
        break;
      case ElementKind::kEndOfStream:
        NSTREAM_RETURN_NOT_OK(ProcessEos(port));
        break;
    }
  }
  // Don't strand a partial page across wakes: downstream shards may
  // otherwise wait arbitrarily long for tuples this call already
  // routed.
  FlushStaged();
  return Status::OK();
}

Status Exchange::ProcessPunctuation(int, const Punctuation& punct) {
  ++stats_.puncts_in;
  FlushStaged();  // no tuple may overtake the punctuation
  input_guards_.ExpireCovered(punct);
  for (int s = 0; s < num_outputs(); ++s) {
    port_guards_[static_cast<size_t>(s)].ExpireCovered(punct);
    EmitPunct(s, punct);
  }
  // Feedback claims covered by this punctuation can never coalesce
  // further (their subset is already complete); drop the bookkeeping.
  for (auto it = pending_.begin(); it != pending_.end();) {
    if (punct.Covers(it->second.pattern)) {
      it = pending_.erase(it);
    } else {
      ++it;
    }
  }
  return Status::OK();
}

Status Exchange::OnAllInputsEos() {
  FlushStaged();
  return Operator::OnAllInputsEos();
}

Status Exchange::HandleAssumed(int out_port,
                               const FeedbackPunctuation& fb) {
  // Fast path: a pattern pinning every partition key with '=' lives
  // entirely on one shard (gate/impatient feedback has this shape).
  // The owner's claim alone kills the subset stream-wide — exploit and
  // relay immediately; waiting for other shards would wait forever,
  // since they never see the subset and never concur.
  int owner = PatternOwnerShard(fb.pattern(), options_.partition_keys,
                                num_outputs());
  if (owner >= 0) {
    if (owner != out_port) {
      // Vacuously true about the sender's slice; nothing to do.
      ++stats_.feedback_ignored;
      return Status::OK();
    }
    input_guards_.Add(fb.pattern());
    ctx()->PurgeInput(0, fb.pattern());
    if (PolicyAtLeast(options_.feedback_policy,
                      FeedbackPolicy::kExploitAndPropagate)) {
      ++owner_relays_;
      RelayFeedback(0, fb);
    }
    return Status::OK();
  }

  // General pattern: a shard's assumption covers only the slice routed
  // to it. Guard that output port — never the shared input — until
  // every shard has made an equivalent claim.
  port_guards_[static_cast<size_t>(out_port)].Add(fb.pattern());

  if (pending_.size() >= kMaxPendingFeedback) pending_.clear();
  Pending& pending = pending_[PendingKey(IntentTag(fb.intent()),
                                         fb.pattern())];
  if (pending.ports.empty()) {
    pending.ports.assign(static_cast<size_t>(num_outputs()), false);
    pending.pattern = fb.pattern();
  }
  if (!pending.ports[static_cast<size_t>(out_port)]) {
    pending.ports[static_cast<size_t>(out_port)] = true;
    ++pending.count;
  }
  if (pending.count < num_outputs()) return Status::OK();

  // Every shard has assumed the subset: it is dead stream-wide. Guard
  // the input (cheaper than routing then dropping), purge anything
  // already buffered, and relay one coalesced claim upstream.
  input_guards_.Add(fb.pattern());
  ctx()->PurgeInput(0, fb.pattern());
  if (PolicyAtLeast(options_.feedback_policy,
                    FeedbackPolicy::kExploitAndPropagate)) {
    ++coalesced_relays_;
    RelayFeedback(0, fb);
  }
  pending_.erase(PendingKey(IntentTag(fb.intent()), fb.pattern()));
  return Status::OK();
}

Status Exchange::ProcessFeedback(int out_port,
                                 const FeedbackPunctuation& fb) {
  if (options_.feedback_policy == FeedbackPolicy::kIgnore ||
      fb.pattern().arity() != input_schema(0)->num_fields()) {
    ++stats_.feedback_ignored;
    return Status::OK();
  }
  if (fb.intent() == FeedbackIntent::kAssumed) {
    return HandleAssumed(out_port, fb);
  }
  // Desired / demanded: prioritization is content-neutral, so the
  // first shard to ask is enough — the promoted tuples serve every
  // shard's copy of the request. Key-pinned requests (the impatient
  // join's shape) are handled without dedup state: only the owner
  // shard can issue them usefully, and the sender already rate-limits
  // per (window, key).
  int owner = PatternOwnerShard(fb.pattern(), options_.partition_keys,
                                num_outputs());
  if (owner >= 0) {
    if (owner != out_port) {
      ++stats_.feedback_ignored;
      return Status::OK();
    }
    ctx()->PrioritizeInput(0, fb.pattern());
    if (PolicyAtLeast(options_.feedback_policy,
                      FeedbackPolicy::kExploitAndPropagate)) {
      RelayFeedback(0, fb);
    }
    return Status::OK();
  }
  if (pending_.size() >= kMaxPendingFeedback) pending_.clear();
  Pending& pending = pending_[PendingKey(IntentTag(fb.intent()),
                                         fb.pattern())];
  bool first = pending.ports.empty();
  if (first) {
    pending.ports.assign(static_cast<size_t>(num_outputs()), false);
    pending.pattern = fb.pattern();
    ctx()->PrioritizeInput(0, fb.pattern());
    if (PolicyAtLeast(options_.feedback_policy,
                      FeedbackPolicy::kExploitAndPropagate)) {
      RelayFeedback(0, fb);
    }
  }
  if (!pending.ports[static_cast<size_t>(out_port)]) {
    pending.ports[static_cast<size_t>(out_port)] = true;
    ++pending.count;
  }
  if (pending.count == num_outputs()) {
    pending_.erase(PendingKey(IntentTag(fb.intent()), fb.pattern()));
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// ShardMerge
// ---------------------------------------------------------------------------

ShardMerge::ShardMerge(std::string name, int num_inputs,
                       ShardMergeOptions options)
    : UnionOp(std::move(name), num_inputs, options.union_options),
      merge_options_(std::move(options)) {}

int ShardMerge::OwnerShard(const PunctPattern& pattern) const {
  return PatternOwnerShard(pattern, merge_options_.partition_keys,
                           num_inputs());
}

Status ShardMerge::ProcessPunctuation(int port,
                                      const Punctuation& punct) {
  // Subsumption-aware coalescing sweep: a punctuation from shard
  // `port` asserts not just its own pattern but every held pattern it
  // covers (a wider claim implies the narrower one), so mark this port
  // on all covered entries — emitting any that every shard has now
  // settled. This is also what reclaims held entries: watermarks cover
  // ts-range patterns, identical patterns cover each other.
  bool matched_exact = false;
  for (auto it = pending_.begin(); it != pending_.end();) {
    Pending& held = it->second;
    if (!punct.Covers(held.pattern)) {
      ++it;
      continue;
    }
    if (held.pattern == punct.pattern()) matched_exact = true;
    if (!held.ports[static_cast<size_t>(port)]) {
      held.ports[static_cast<size_t>(port)] = true;
      ++held.count;
    }
    if (held.count == num_inputs()) {
      ++coalesced_puncts_;
      EmitPunct(0, Punctuation(held.pattern));
      it = pending_.erase(it);
    } else {
      ++it;
    }
  }

  const PunctPattern& p = punct.pattern();
  if (IsWatermarkPattern(p)) {
    // Min-across-inputs merge: emitted only once every shard has
    // advanced, so never early and never duplicated.
    return UnionOp::ProcessPunctuation(port, punct);
  }

  ++stats_.puncts_in;
  guards_.ExpireCovered(punct);

  int owner = OwnerShard(p);
  if (owner >= 0) {
    // The subset lives entirely on one shard. Its claim settles the
    // merged stream; any other shard's identical claim is vacuous.
    if (port == owner) {
      ++owner_routed_puncts_;
      EmitPunct(0, punct);
    } else {
      ++dropped_vacuous_puncts_;
    }
    return Status::OK();
  }

  // General pattern: sound on the merged output only once EVERY shard
  // has asserted (or covered) it. The sweep above already recorded
  // this port if an entry existed; otherwise open one now.
  if (matched_exact) return Status::OK();
  if (pending_.size() >= kMaxPendingPuncts) pending_.clear();
  Pending& pending = pending_[PendingKey('P', p)];
  if (pending.ports.empty()) {
    pending.ports.assign(static_cast<size_t>(num_inputs()), false);
    pending.pattern = p;
  }
  if (!pending.ports[static_cast<size_t>(port)]) {
    pending.ports[static_cast<size_t>(port)] = true;
    ++pending.count;
  }
  if (pending.count == num_inputs()) {
    pending_.erase(PendingKey('P', p));
    ++coalesced_puncts_;
    EmitPunct(0, punct);
  }
  return Status::OK();
}

Status ShardMerge::ProcessPage(int port, Page&& page, TimeMs* tick) {
  // Columnar pages are all tuples by construction: same wholesale
  // forward, layout intact.
  if (guards_.empty() && page.is_columnar() && !page.empty()) {
    if (tick) *tick += static_cast<TimeMs>(page.size());
    stats_.tuples_in += page.size();
    EmitPage(0, std::move(page));
    return Status::OK();
  }
  // Punctuation/EOS flush their page, so they can only sit last; a page
  // with a tuple in last position is all tuples and — absent guards —
  // forwards wholesale with one queue lock.
  if (guards_.empty() && !page.is_columnar() && !page.empty() &&
      page.elements().back().is_tuple()) {
    if (tick) *tick += static_cast<TimeMs>(page.size());
    stats_.tuples_in += page.size();
    EmitPage(0, std::move(page));
    return Status::OK();
  }
  return Operator::ProcessPage(port, std::move(page), tick);
}

// ---------------------------------------------------------------------------
// MakePartitionedJoin
// ---------------------------------------------------------------------------

Result<PartitionedJoinPlan> MakePartitionedJoin(QueryPlan* plan,
                                                const std::string& name,
                                                JoinOptions options,
                                                int num_shards) {
  if (num_shards < 1) {
    return Status::InvalidArgument(name + ": num_shards must be >= 1");
  }
  if (options.left_keys.empty() || options.right_keys.empty()) {
    return Status::InvalidArgument(
        name + ": partitioned join requires equi-join keys");
  }

  PartitionedJoinPlan out;
  ExchangeOptions left_xopt;
  left_xopt.partition_keys = options.left_keys;
  out.left_exchange = plan->AddOp(std::make_unique<Exchange>(
      name + ".xchg.left", num_shards, std::move(left_xopt)));
  ExchangeOptions right_xopt;
  right_xopt.partition_keys = options.right_keys;
  out.right_exchange = plan->AddOp(std::make_unique<Exchange>(
      name + ".xchg.right", num_shards, std::move(right_xopt)));

  ShardMergeOptions mopt;
  mopt.union_options.feedback_policy = options.feedback_policy;
  // Left attributes keep their positions in the join output schema, so
  // the output-side partition keys are exactly the left key positions.
  mopt.partition_keys = options.left_keys;
  out.merge = plan->AddOp(std::make_unique<ShardMerge>(
      name + ".merge", num_shards, std::move(mopt)));

  for (int s = 0; s < num_shards; ++s) {
    JoinOptions shard_options = options;
    shard_options.shard_index = s;
    shard_options.shard_count = num_shards;
    auto* shard = plan->AddOp(std::make_unique<SymmetricHashJoin>(
        name + ".shard" + std::to_string(s), std::move(shard_options)));
    // Pin shard s to worker (s mod pool) under the pooled scheduler:
    // each shard's hash state and input queues stay on one worker.
    shard->set_scheduler_affinity(s);
    out.shards.push_back(shard);
    NSTREAM_RETURN_NOT_OK(
        plan->Connect(out.left_exchange->id(), s, shard->id(), 0));
    NSTREAM_RETURN_NOT_OK(
        plan->Connect(out.right_exchange->id(), s, shard->id(), 1));
    NSTREAM_RETURN_NOT_OK(
        plan->Connect(shard->id(), 0, out.merge->id(), s));
  }
  return out;
}

}  // namespace nstream
