#include "ops/window_aggregate.h"

#include <algorithm>

#include "common/string_util.h"
#include "recovery/snapshot.h"

namespace nstream {

const char* AggKindName(AggKind k) {
  switch (k) {
    case AggKind::kCount:
      return "count";
    case AggKind::kSum:
      return "sum";
    case AggKind::kAvg:
      return "avg";
    case AggKind::kMax:
      return "max";
    case AggKind::kMin:
      return "min";
  }
  return "?";
}

struct WindowAggregate::Key {
  int64_t wid = 0;
  std::vector<Value> groups;

  bool operator==(const Key& o) const {
    return wid == o.wid && groups == o.groups;
  }
};

struct WindowAggregate::KeyHash {
  size_t operator()(const Key& k) const {
    size_t h = std::hash<int64_t>{}(k.wid);
    for (const Value& v : k.groups) {
      h ^= v.Hash() + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
    }
    return h;
  }
};

struct WindowAggregate::KeyEq {
  bool operator()(const Key& a, const Key& b) const { return a == b; }
};

struct WindowAggregate::Partial {
  int64_t count = 0;
  double sum = 0;
  double max = -1e308;
  double min = 1e308;
};

WindowAggregate::WindowAggregate(std::string name,
                                 WindowAggregateOptions options)
    : Operator(std::move(name), 1, 1),
      options_([&] {
        if (options.output_page_size <= 0) options.output_page_size = 1;
        return std::move(options);
      }()),
      num_groups_(static_cast<int>(options_.group_attrs.size())),
      agg_out_idx_(1 + num_groups_),
      state_(std::make_unique<
             std::unordered_map<Key, Partial, KeyHash, KeyEq>>()),
      tombstones_(
          std::make_unique<std::unordered_set<Key, KeyHash, KeyEq>>()) {}

WindowAggregate::~WindowAggregate() = default;

Status WindowAggregate::Open(ExecContext* ctx) {
  NSTREAM_RETURN_NOT_OK(Operator::Open(ctx));
  paged_emission_ = this->ctx()->PagedEmissionPreferred();
  return Status::OK();
}

AggMonotonicity WindowAggregate::monotonicity() const {
  switch (options_.kind) {
    case AggKind::kCount:
    case AggKind::kMax:
      return AggMonotonicity::kNonDecreasing;
    case AggKind::kMin:
      return AggMonotonicity::kNonIncreasing;
    case AggKind::kSum:
      return options_.assume_non_negative
                 ? AggMonotonicity::kNonDecreasing
                 : AggMonotonicity::kNone;
    case AggKind::kAvg:
      return AggMonotonicity::kNone;
  }
  return AggMonotonicity::kNone;
}

Status WindowAggregate::InferSchemas() {
  const Schema& in = *input_schema(0);
  if (options_.ts_attr < 0 || options_.ts_attr >= in.num_fields()) {
    return Status::OutOfRange(name() + ": ts_attr out of range");
  }
  std::vector<Field> out;
  out.emplace_back("window_end", ValueType::kTimestamp);
  for (int g : options_.group_attrs) {
    if (g < 0 || g >= in.num_fields()) {
      return Status::OutOfRange(name() + ": group attr out of range");
    }
    out.push_back(in.field(g));
  }
  ValueType agg_type = options_.kind == AggKind::kCount
                           ? ValueType::kInt64
                           : ValueType::kDouble;
  std::string agg_name = std::string(AggKindName(options_.kind));
  if (options_.agg_attr >= 0) {
    if (options_.agg_attr >= in.num_fields()) {
      return Status::OutOfRange(name() + ": agg attr out of range");
    }
    agg_name += "_" + in.field(options_.agg_attr).name;
  }
  out.emplace_back(agg_name, agg_type);
  SetOutputSchema(0, Schema::Make(std::move(out)));
  return Status::OK();
}

Tuple WindowAggregate::MakeOutput(const Key& key, const Partial& p,
                                  TupleArena* arena) const {
  Tuple t(arena, 1 + key.groups.size() + 1);
  t.Append(Value::Timestamp(options_.window.WindowEnd(key.wid)));
  for (const Value& g : key.groups) t.Append(g);
  switch (options_.kind) {
    case AggKind::kCount:
      t.Append(Value::Int64(p.count));
      break;
    case AggKind::kSum:
      t.Append(Value::Double(p.sum));
      break;
    case AggKind::kAvg:
      t.Append(p.count > 0 ? Value::Double(p.sum / p.count)
                           : Value::Null());
      break;
    case AggKind::kMax:
      t.Append(p.count > 0 ? Value::Double(p.max) : Value::Null());
      break;
    case AggKind::kMin:
      t.Append(p.count > 0 ? Value::Double(p.min) : Value::Null());
      break;
  }
  return t;
}

bool WindowAggregate::GroupGuardBlocks(int64_t wid,
                                       const Tuple& tuple) const {
  // Group guards constrain only the window_end and group positions
  // (DecideAggFeedback routes agg-constrained patterns elsewhere), so
  // they can be evaluated against the raw input values directly.
  Value we = Value::Timestamp(options_.window.WindowEnd(wid));
  for (const PunctPattern& p : group_guards_.patterns()) {
    if (p.arity() != 1 + num_groups_ + 1) continue;
    if (!p.attr(0).Matches(we)) continue;
    bool all = true;
    for (int gi = 0; gi < num_groups_; ++gi) {
      if (!p.attr(1 + gi).Matches(tuple.value(
              options_.group_attrs[static_cast<size_t>(gi)]))) {
        all = false;
        break;
      }
    }
    if (all) return true;
  }
  return false;
}

Tuple WindowAggregate::MakeProbe(const Key& key) const {
  Tuple t;
  t.Append(Value::Timestamp(options_.window.WindowEnd(key.wid)));
  for (const Value& g : key.groups) t.Append(g);
  t.Append(Value::Null());
  return t;
}

void WindowAggregate::ApplyPartial(Partial& p, double v) {
  ++p.count;
  p.sum += v;
  if (v > p.max || p.count == 1) p.max = v;
  if (v < p.min || p.count == 1) p.min = v;
}

uint64_t WindowAggregate::HashKeyOf(int64_t wid, const Tuple& t) const {
  // Mirrors KeyHash over the Key this (tuple, window) would build:
  // equal keys hash equally, which is all the run grouping needs
  // (group membership is verified value-by-value via SameKey).
  size_t h = std::hash<int64_t>{}(wid);
  for (int g : options_.group_attrs) {
    h ^= t.value(g).Hash() + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  }
  return h;
}

bool WindowAggregate::SameKey(const Key& key, int64_t wid,
                              const Tuple& t) const {
  if (key.wid != wid) return false;
  for (int gi = 0; gi < num_groups_; ++gi) {
    if (!(key.groups[static_cast<size_t>(gi)] ==
          t.value(options_.group_attrs[static_cast<size_t>(gi)]))) {
      return false;
    }
  }
  return true;
}

Status WindowAggregate::UpdateState(const Tuple& tuple, int64_t wid,
                                    double v) {
  Key key;
  key.wid = wid;
  key.groups.reserve(static_cast<size_t>(num_groups_));
  for (int g : options_.group_attrs) key.groups.push_back(tuple.value(g));

  if (!tombstones_->empty() && tombstones_->count(key) > 0) {
    ++stats_.input_guard_drops;
    ++updates_skipped_;
    return Status::OK();
  }
  if (options_.charge_ms_per_update > 0) {
    ctx()->ChargeMs(options_.charge_ms_per_update);
  }
  for (int w = 0; w < options_.work_iters_per_update; ++w) {
    work_checksum_ =
        work_checksum_ * 6364136223846793005ULL + 1442695040888963407ULL;
  }
  auto [it, inserted] = state_->try_emplace(std::move(key));
  ApplyPartial(it->second, v);
  ++updates_applied_;

  // Monotone purge check (the MAX ¬[*,≥50] behaviour): if an active
  // feedback pattern now provably covers this entry's final result,
  // drop the state and tombstone the key so late tuples cannot
  // recreate it with a wrong partial (§3.5's value-40 pitfall).
  if (!purge_partial_patterns_.empty()) {
    Tuple out = MakeOutput(it->first, it->second);
    for (const PunctPattern& pat : purge_partial_patterns_) {
      if (pat.Matches(out)) {
        tombstones_->insert(it->first);
        state_->erase(it);
        ++stats_.state_purged;
        break;
      }
    }
  }
  return Status::OK();
}

Status WindowAggregate::ProcessTuple(int, const Tuple& tuple) {
  Result<int64_t> ts = tuple.value(options_.ts_attr).AsInt64();
  if (!ts.ok()) return Status::OK();  // untimestamped: contribute nothing

  // The aggregated value (ignored for COUNT(*)).
  double v = 0;
  if (options_.agg_attr >= 0) {
    Result<double> rv = tuple.value(options_.agg_attr).AsDouble();
    if (rv.ok()) {
      v = rv.value();
    } else if (options_.kind != AggKind::kCount) {
      return Status::OK();  // NULL value: no contribution (SQL-style)
    }
  }

  for (int64_t wid : options_.window.WindowsOf(ts.value())) {
    if (wid <= closed_through_) continue;  // window already closed
    // Guard check first, on the raw values — the input guard must be
    // cheaper than the aggregation it avoids (no probe-tuple
    // allocation on this path).
    if (!group_guards_.empty() && GroupGuardBlocks(wid, tuple)) {
      ++stats_.input_guard_drops;
      ++updates_skipped_;
      continue;
    }
    NSTREAM_RETURN_NOT_OK(UpdateState(tuple, wid, v));
  }
  return Status::OK();
}

Status WindowAggregate::ProcessPage(int port, Page&& page, TimeMs* tick) {
  if (!options_.page_batched_input) {
    Status st = Operator::ProcessPage(port, std::move(page), tick);
    FlushOutput();
    return st;
  }
  // Batched walk, same shape as the join's: runs of tuples between
  // punctuation/EOS boundaries take the grouped update; the
  // boundaries keep guard/tombstone/closed-window state fixed within
  // a run, so per-run decisions match the element-wise walk's.
  // Columnar input materializes rows first: the aggregation reads
  // each tuple's attrs several times across passes, so aliased row
  // gather (flat field copies) is the cheap, simple bridge.
  page.EnsureRowLayout();
  std::vector<StreamElement>& elems = page.mutable_elements();
  size_t i = 0;
  while (i < elems.size()) {
    if (elems[i].is_tuple()) {
      size_t j = i + 1;
      while (j < elems.size() && elems[j].is_tuple()) ++j;
      NSTREAM_RETURN_NOT_OK(ProcessTupleRun(elems, i, j, tick));
      i = j;
    } else {
      if (tick) ++*tick;
      if (elems[i].is_punct()) {
        NSTREAM_RETURN_NOT_OK(ProcessPunctuation(port, elems[i].punct()));
      } else {
        NSTREAM_RETURN_NOT_OK(ProcessEos(port));
      }
      ++i;
    }
  }
  FlushOutput();
  return Status::OK();
}

Status WindowAggregate::ProcessTupleRun(std::vector<StreamElement>& elems,
                                        size_t begin, size_t end,
                                        TimeMs* tick) {
  // Purge-on-partial feedback performs per-update state surgery
  // (erase + tombstone) that the grouped path cannot replicate
  // without per-item re-checks; fall back to the element walk while
  // any such pattern is active (rare: only after monotone assumed
  // feedback, and expired by the next covering punctuation).
  if (!purge_partial_patterns_.empty()) {
    for (size_t e = begin; e < end; ++e) {
      if (tick) ++*tick;
      ++stats_.tuples_in;
      NSTREAM_RETURN_NOT_OK(ProcessTuple(0, elems[e].tuple()));
    }
    return Status::OK();
  }

  // Pass 1: per-(tuple, window) admission — timestamp, value, closed
  // window, group guard — exactly ProcessTuple's checks and counter
  // increments, plus one group-hash computation.
  std::vector<RunItem>& run = run_scratch_;
  run.clear();
  for (size_t e = begin; e < end; ++e) {
    if (tick) ++*tick;
    ++stats_.tuples_in;
    const Tuple& tuple = elems[e].tuple();
    Result<int64_t> ts = tuple.value(options_.ts_attr).AsInt64();
    if (!ts.ok()) continue;
    double v = 0;
    if (options_.agg_attr >= 0) {
      Result<double> rv = tuple.value(options_.agg_attr).AsDouble();
      if (rv.ok()) {
        v = rv.value();
      } else if (options_.kind != AggKind::kCount) {
        continue;
      }
    }
    for (int64_t wid : options_.window.WindowsOf(ts.value())) {
      if (wid <= closed_through_) continue;
      if (!group_guards_.empty() && GroupGuardBlocks(wid, tuple)) {
        ++stats_.input_guard_drops;
        ++updates_skipped_;
        continue;
      }
      RunItem item;
      item.elem = static_cast<uint32_t>(e);
      item.wid = wid;
      item.hash = HashKeyOf(wid, tuple);
      item.v = v;
      run.push_back(item);
    }
  }
  if (run.empty()) return Status::OK();

  // Pass 2: group by hash. The element-index tiebreak keeps items of
  // one group in element order, so floating-point partial sums
  // accumulate in exactly the element-wise walk's order.
  std::sort(run.begin(), run.end(),
            [](const RunItem& a, const RunItem& b) {
              if (a.hash != b.hash) return a.hash < b.hash;
              if (a.elem != b.elem) return a.elem < b.elem;
              return a.wid < b.wid;
            });

  // Pass 3: per group, build the Key once and probe the state map
  // once. Items whose actual key differs (hash collision) take the
  // keyed single-update path; everything else applies straight to the
  // group's partial.
  size_t g = 0;
  while (g < run.size()) {
    size_t h = g + 1;
    while (h < run.size() && run[h].hash == run[g].hash) ++h;

    const Tuple& t0 = elems[run[g].elem].tuple();
    Key key;
    key.wid = run[g].wid;
    key.groups.reserve(static_cast<size_t>(num_groups_));
    for (int ga : options_.group_attrs) {
      key.groups.push_back(t0.value(ga));
    }
    const bool tombstoned =
        !tombstones_->empty() && tombstones_->count(key) > 0;
    // Pointers, not iterators: a collision item's UpdateState may
    // insert and rehash the map, which invalidates iterators but
    // never element references.
    Partial* partial = nullptr;
    const Key* group_key = &key;
    for (size_t m = g; m < h; ++m) {
      const Tuple& tuple = elems[run[m].elem].tuple();
      if (m > g && !SameKey(*group_key, run[m].wid, tuple)) {
        NSTREAM_RETURN_NOT_OK(UpdateState(tuple, run[m].wid, run[m].v));
        continue;
      }
      if (tombstoned) {
        ++stats_.input_guard_drops;
        ++updates_skipped_;
        continue;
      }
      if (options_.charge_ms_per_update > 0) {
        ctx()->ChargeMs(options_.charge_ms_per_update);
      }
      for (int w = 0; w < options_.work_iters_per_update; ++w) {
        work_checksum_ = work_checksum_ * 6364136223846793005ULL +
                         1442695040888963407ULL;
      }
      if (partial == nullptr) {
        auto res = state_->try_emplace(std::move(key));
        partial = &res.first->second;
        group_key = &res.first->first;
      }
      ApplyPartial(*partial, run[m].v);
      ++updates_applied_;
    }
    g = h;
  }
  return Status::OK();
}

void WindowAggregate::EmitResult(const Key& key, const Partial& p) {
  const bool paged = paged_emission_;
  // Staged results build straight into the staging page's arena (zero
  // heap allocations per result); the SimExecutor path keeps owned
  // per-element emission.
  Tuple out = MakeOutput(key, p, paged ? out_staged_.arena() : nullptr);
  if (output_guards_.Blocks(out)) {
    ++stats_.output_guard_drops;
    return;
  }
  if (!paged) {
    Emit(0, std::move(out));
    return;
  }
  // Columnar staging: results land as one flat slot store per
  // attribute in the staged page's column arrays (the row tuple above
  // lives in the same arena, so string bytes re-borrow — no clones).
  // Row staging remains the fallback when the columnar layout or
  // arenas are off.
  ColumnarBlock* blk =
      out_staged_.is_columnar() ? out_staged_.columnar() : nullptr;
  if (blk == nullptr && out_staged_.empty()) {
    if (PageColumnar::enabled()) {
      blk = out_staged_.BeginColumnar(
          static_cast<uint32_t>(out.size()),
          static_cast<uint32_t>(options_.output_page_size));
    }
    if (blk == nullptr) {
      out_staged_.Reserve(static_cast<size_t>(options_.output_page_size));
    }
  }
  if (blk != nullptr) {
    const uint32_t r = blk->AddRow(out.id(), out.arrival_ms());
    for (int c = 0; c < out.size(); ++c) {
      blk->Set(static_cast<uint32_t>(c), r, out.value(c));
    }
  } else {
    out_staged_.Add(StreamElement::OfTuple(std::move(out)));
  }
  if (static_cast<int>(out_staged_.size()) >= options_.output_page_size) {
    FlushOutput();
  }
}

void WindowAggregate::FlushOutput() {
  if (out_staged_.empty()) {
    // Same dead-payload reset as the join's FlushOutput: results
    // built in the staging arena but dropped by an output guard must
    // not accumulate across flush points.
    if (out_staged_.arena_if_created() != nullptr) out_staged_ = Page();
    return;
  }
  EmitPage(0, std::move(out_staged_));
  out_staged_ = Page();
}

void WindowAggregate::CloseThrough(int64_t last_closable) {
  if (last_closable <= closed_through_) return;
  // Deterministic emission order: (window, group rendering).
  std::vector<const Key*> to_close;
  for (const auto& [key, p] : *state_) {
    if (key.wid <= last_closable) to_close.push_back(&key);
  }
  std::sort(to_close.begin(), to_close.end(),
            [](const Key* a, const Key* b) {
              if (a->wid != b->wid) return a->wid < b->wid;
              for (size_t i = 0;
                   i < a->groups.size() && i < b->groups.size(); ++i) {
                Result<int> c = a->groups[i].Compare(b->groups[i]);
                int cc = c.ok() ? c.value() : 0;
                if (cc != 0) return cc < 0;
              }
              return false;
            });
  for (const Key* key : to_close) {
    EmitResult(*key, state_->at(*key));
  }
  for (const Key* key : to_close) state_->erase(*key);

  // Tombstones for closed windows are dead state — reclaim (§4.4).
  for (auto it = tombstones_->begin(); it != tombstones_->end();) {
    if (it->wid <= last_closable) {
      it = tombstones_->erase(it);
    } else {
      ++it;
    }
  }
  closed_through_ = last_closable;

  // Tell downstream which windows are complete, and expire guards the
  // punctuation now covers.
  PunctPattern out_p =
      PunctPattern::AllWildcard(output_schema(0)->num_fields());
  out_p = out_p.With(
      0, AttrPattern::Le(Value::Timestamp(
             options_.window.WindowEnd(last_closable))));
  Punctuation punct(out_p);
  output_guards_.ExpireCovered(punct);
  group_guards_.ExpireCovered(punct);
  std::vector<PunctPattern> kept;
  for (PunctPattern& pat : purge_partial_patterns_) {
    if (!punct.Covers(pat)) kept.push_back(std::move(pat));
  }
  purge_partial_patterns_ = std::move(kept);
  FlushOutput();  // results for the closed windows precede the claim
  EmitPunct(0, std::move(punct));
}

Status WindowAggregate::ProcessPunctuation(int, const Punctuation& punct) {
  ++stats_.puncts_in;
  // Watermark punctuation on the timestamp attribute closes windows.
  const PunctPattern& p = punct.pattern();
  std::vector<int> constrained = p.ConstrainedIndices();
  if (constrained.size() != 1 || constrained[0] != options_.ts_attr) {
    return Status::OK();  // not a progress claim we can use
  }
  const AttrPattern& ap = p.attr(options_.ts_attr);
  Result<int64_t> bound = ap.operand().AsInt64();
  if (!bound.ok()) return Status::OK();
  int64_t inclusive = bound.value();
  if (ap.op() == PatternOp::kLt) {
    inclusive -= 1;
  } else if (ap.op() != PatternOp::kLe) {
    return Status::OK();
  }
  CloseThrough(options_.window.LastClosableWindow(inclusive));
  return Status::OK();
}

Status WindowAggregate::OnAllInputsEos() {
  // End of stream closes everything still open.
  int64_t max_wid = INT64_MIN;
  for (const auto& [key, p] : *state_) max_wid = std::max(max_wid, key.wid);
  if (max_wid != INT64_MIN) CloseThrough(max_wid);
  return Operator::OnAllInputsEos();
}

std::optional<PunctPattern> WindowAggregate::MapToInput(
    const PunctPattern& f) const {
  PunctPattern out =
      PunctPattern::AllWildcard(input_schema(0)->num_fields());
  for (int idx : f.ConstrainedIndices()) {
    if (idx == 0) {
      Result<AttrPattern> ts =
          MapWindowEndToTimestamp(f.attr(0), options_.window);
      if (!ts.ok()) return std::nullopt;
      out = out.With(options_.ts_attr, ts.MoveValue());
    } else if (idx >= 1 && idx <= num_groups_) {
      out = out.With(options_.group_attrs[static_cast<size_t>(idx - 1)],
                     f.attr(idx));
    } else {
      return std::nullopt;  // constraint on the computed aggregate
    }
  }
  if (out.IsAllWildcard()) return std::nullopt;
  return out;
}

Status WindowAggregate::HandleAssumed(const PunctPattern& f) {
  std::vector<int> group_idx;
  group_idx.reserve(static_cast<size_t>(num_groups_) + 1);
  for (int i = 0; i <= num_groups_; ++i) group_idx.push_back(i);
  AggFeedbackDecision d = DecideAggFeedback(
      f, group_idx, {agg_out_idx_}, monotonicity());
  if (d.null_response) {
    ++stats_.feedback_ignored;
    return Status::OK();
  }

  // The output guard is both the prescribed action for the
  // non-exploitable rows and a cheap backstop for the others.
  output_guards_.Add(f);
  if (options_.feedback_policy == FeedbackPolicy::kOutputGuardOnly) {
    return Status::OK();  // Scheme F1: nothing beyond the guard
  }

  std::vector<Key> purged;
  if (d.purge_groups) {
    // Table 1 row 1: purge matching groups and keep them from
    // re-forming via the group guard.
    for (auto it = state_->begin(); it != state_->end();) {
      if (f.Matches(MakeProbe(it->first))) {
        it = state_->erase(it);
        ++stats_.state_purged;
      } else {
        ++it;
      }
    }
    group_guards_.Add(f);
  }
  if (d.purge_by_partial) {
    // Table 1 row 3 / §3.5 MAX: purge entries whose partial already
    // guarantees a matching final; tombstone so they cannot re-form.
    for (auto it = state_->begin(); it != state_->end();) {
      if (f.Matches(MakeOutput(it->first, it->second))) {
        tombstones_->insert(it->first);
        if (static_cast<int>(purged.size()) < options_.max_propagations) {
          purged.push_back(it->first);
        }
        it = state_->erase(it);
        ++stats_.state_purged;
      } else {
        ++it;
      }
    }
    purge_partial_patterns_.push_back(f);
  }

  if (!PolicyAtLeast(options_.feedback_policy,
                     FeedbackPolicy::kExploitAndPropagate)) {
    return Status::OK();
  }
  if (d.propagate_groups) {
    std::optional<PunctPattern> mapped = MapToInput(f);
    if (mapped.has_value()) {
      RelayFeedback(0, FeedbackPunctuation::Assumed(*mapped));
      ctx()->PurgeInput(0, *mapped);
    }
  }
  if (d.purge_by_partial && options_.window.tumbling()) {
    // "Propagate G in terms of the input schema": each purged
    // (window, group) becomes ¬[ts∈window-range, group=..] upstream.
    // Only sound for tumbling windows — a sliding-window tuple feeds
    // neighbours that were not purged (Example 2).
    for (const Key& key : purged) {
      PunctPattern up =
          PunctPattern::AllWildcard(input_schema(0)->num_fields());
      up = up.With(options_.ts_attr,
                   AttrPattern::Range(
                       Value::Timestamp(options_.window.WindowStart(key.wid)),
                       Value::Timestamp(
                           options_.window.WindowEnd(key.wid) - 1)));
      for (int gi = 0; gi < num_groups_; ++gi) {
        up = up.With(options_.group_attrs[static_cast<size_t>(gi)],
                     AttrPattern::Eq(key.groups[static_cast<size_t>(gi)]));
      }
      RelayFeedback(0, FeedbackPunctuation::Assumed(up));
    }
  }
  return Status::OK();
}

Status WindowAggregate::HandleDesired(const FeedbackPunctuation& fb) {
  std::optional<PunctPattern> mapped = MapToInput(fb.pattern());
  if (mapped.has_value()) {
    ctx()->PrioritizeInput(0, *mapped);
    if (PolicyAtLeast(options_.feedback_policy,
                      FeedbackPolicy::kExploitAndPropagate)) {
      FeedbackPunctuation up(fb.intent(), *mapped);
      up.set_origin_op(fb.origin_op());
      RelayFeedback(0, std::move(up));
    }
  } else {
    ++stats_.feedback_ignored;
  }
  return Status::OK();
}

Status WindowAggregate::HandleDemanded(const FeedbackPunctuation& fb) {
  // §3.4: "a demanded punctuation may cause some aggregates to unblock
  // and produce partial results" — emit current partials for matching
  // open windows right now (approximate results, by design), then ask
  // upstream to hurry the inputs along.
  std::vector<const Key*> matches;
  for (const auto& [key, p] : *state_) {
    Tuple out = MakeOutput(key, p);
    if (fb.pattern().arity() == out.size() && fb.pattern().Matches(out)) {
      matches.push_back(&key);
    } else if (fb.pattern().arity() == out.size()) {
      // Also match on the key alone (wildcard agg): a demanded subset
      // is usually stated over windows/groups, not aggregate values.
      if (fb.pattern().Matches(MakeProbe(key))) matches.push_back(&key);
    }
  }
  std::sort(matches.begin(), matches.end(),
            [](const Key* a, const Key* b) { return a->wid < b->wid; });
  for (const Key* key : matches) {
    Tuple out = MakeOutput(*key, state_->at(*key));
    ++partials_emitted_;
    Emit(0, std::move(out));
  }
  return HandleDesired(fb);
}

Status WindowAggregate::ProcessFeedback(int,
                                        const FeedbackPunctuation& fb) {
  if (options_.feedback_policy == FeedbackPolicy::kIgnore ||
      fb.pattern().arity() != output_schema(0)->num_fields()) {
    ++stats_.feedback_ignored;
    return Status::OK();
  }
  switch (fb.intent()) {
    case FeedbackIntent::kAssumed:
      return HandleAssumed(fb.pattern());
    case FeedbackIntent::kDesired:
      return HandleDesired(fb);
    case FeedbackIntent::kDemanded:
      return HandleDemanded(fb);
  }
  return Status::OK();
}

size_t WindowAggregate::state_size() const { return state_->size(); }
size_t WindowAggregate::tombstone_count() const {
  return tombstones_->size();
}

namespace {

// Serialized-key canonical order for the unordered state containers:
// keys hold Values (group attrs), so "sort by serialized bytes" is
// the simplest total order that agrees across processes.
std::string KeyBytes(int64_t wid, const std::vector<Value>& groups) {
  SnapshotWriter kw;
  kw.WriteI64(wid);
  kw.WriteU32(static_cast<uint32_t>(groups.size()));
  for (const Value& v : groups) kw.WriteValue(v);
  return kw.Release();
}

}  // namespace

Status WindowAggregate::SnapshotState(SnapshotWriter* w) {
  NSTREAM_RETURN_NOT_OK(Operator::SnapshotState(w));

  std::vector<std::pair<std::string, const Partial*>> entries;
  entries.reserve(state_->size());
  for (const auto& [key, partial] : *state_) {
    entries.emplace_back(KeyBytes(key.wid, key.groups), &partial);
  }
  std::sort(entries.begin(), entries.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  w->WriteU32(static_cast<uint32_t>(entries.size()));
  for (const auto& [bytes, partial] : entries) {
    w->WriteSection(bytes);
    w->WriteI64(partial->count);
    w->WriteDouble(partial->sum);
    w->WriteDouble(partial->max);
    w->WriteDouble(partial->min);
  }

  std::vector<std::string> tombs;
  tombs.reserve(tombstones_->size());
  for (const Key& key : *tombstones_) {
    tombs.push_back(KeyBytes(key.wid, key.groups));
  }
  std::sort(tombs.begin(), tombs.end());
  w->WriteU32(static_cast<uint32_t>(tombs.size()));
  for (const std::string& bytes : tombs) w->WriteSection(bytes);

  w->WriteGuardSet(group_guards_);
  w->WriteGuardSet(output_guards_);
  w->WriteU32(static_cast<uint32_t>(purge_partial_patterns_.size()));
  for (const PunctPattern& p : purge_partial_patterns_) {
    w->WritePattern(p);
  }
  w->WriteI64(closed_through_);
  w->WriteU64(work_checksum_);
  w->WriteU64(partials_emitted_);
  w->WriteU64(updates_applied_);
  w->WriteU64(updates_skipped_);
  WritePageElements(w, out_staged_);
  return Status::OK();
}

Status WindowAggregate::RestoreState(SnapshotReader* r) {
  NSTREAM_RETURN_NOT_OK(Operator::RestoreState(r));

  auto read_key = [](SnapshotReader* kr, Key* key) -> Status {
    NSTREAM_RETURN_NOT_OK(kr->ReadI64(&key->wid));
    uint32_t ngroups = 0;
    NSTREAM_RETURN_NOT_OK(kr->ReadU32(&ngroups));
    key->groups.resize(ngroups);
    for (uint32_t g = 0; g < ngroups; ++g) {
      NSTREAM_RETURN_NOT_OK(kr->ReadValue(&key->groups[g]));
    }
    return Status::OK();
  };

  state_->clear();
  uint32_t nstate = 0;
  NSTREAM_RETURN_NOT_OK(r->ReadU32(&nstate));
  state_->reserve(nstate);
  for (uint32_t i = 0; i < nstate; ++i) {
    std::string_view key_bytes;
    NSTREAM_RETURN_NOT_OK(r->ReadSection(&key_bytes));
    SnapshotReader kr(key_bytes);
    Key key;
    NSTREAM_RETURN_NOT_OK(read_key(&kr, &key));
    Partial partial;
    NSTREAM_RETURN_NOT_OK(r->ReadI64(&partial.count));
    NSTREAM_RETURN_NOT_OK(r->ReadDouble(&partial.sum));
    NSTREAM_RETURN_NOT_OK(r->ReadDouble(&partial.max));
    NSTREAM_RETURN_NOT_OK(r->ReadDouble(&partial.min));
    (*state_)[std::move(key)] = partial;
  }

  tombstones_->clear();
  uint32_t ntombs = 0;
  NSTREAM_RETURN_NOT_OK(r->ReadU32(&ntombs));
  tombstones_->reserve(ntombs);
  for (uint32_t i = 0; i < ntombs; ++i) {
    std::string_view key_bytes;
    NSTREAM_RETURN_NOT_OK(r->ReadSection(&key_bytes));
    SnapshotReader kr(key_bytes);
    Key key;
    NSTREAM_RETURN_NOT_OK(read_key(&kr, &key));
    tombstones_->insert(std::move(key));
  }

  NSTREAM_RETURN_NOT_OK(r->ReadGuardSet(&group_guards_));
  NSTREAM_RETURN_NOT_OK(r->ReadGuardSet(&output_guards_));
  purge_partial_patterns_.clear();
  uint32_t npurge = 0;
  NSTREAM_RETURN_NOT_OK(r->ReadU32(&npurge));
  purge_partial_patterns_.resize(npurge);
  for (uint32_t i = 0; i < npurge; ++i) {
    NSTREAM_RETURN_NOT_OK(r->ReadPattern(&purge_partial_patterns_[i]));
  }
  NSTREAM_RETURN_NOT_OK(r->ReadI64(&closed_through_));
  NSTREAM_RETURN_NOT_OK(r->ReadU64(&work_checksum_));
  NSTREAM_RETURN_NOT_OK(r->ReadU64(&partials_emitted_));
  NSTREAM_RETURN_NOT_OK(r->ReadU64(&updates_applied_));
  NSTREAM_RETURN_NOT_OK(r->ReadU64(&updates_skipped_));
  out_staged_ = Page();
  NSTREAM_RETURN_NOT_OK(ReadPageInto(r, &out_staged_));
  return Status::OK();
}

}  // namespace nstream
