// Select (σ): stateless filter. Its feedback characterization is the
// simplest in the paper (§4.3): "assumed punctuation can simply be
// added to its select condition" — implemented as an input GuardSet —
// and, being an identity map from output to input schema, any feedback
// can be safely relayed upstream.

#ifndef NSTREAM_OPS_SELECT_H_
#define NSTREAM_OPS_SELECT_H_

#include <functional>
#include <string>
#include <utility>

#include "core/feedback_policy.h"
#include "core/guards.h"
#include "exec/operator.h"

namespace nstream {

struct SelectOptions {
  FeedbackPolicy feedback_policy = FeedbackPolicy::kExploitAndPropagate;
};

class Select final : public Operator {
 public:
  using Predicate = std::function<bool(const Tuple&)>;

  Select(std::string name, Predicate predicate, SelectOptions options = {})
      : Operator(std::move(name), 1, 1),
        predicate_(std::move(predicate)),
        options_(options) {}

  /// Select whose condition is a punctuation pattern (tuples matching
  /// `pattern` pass).
  static std::unique_ptr<Select> FromPattern(std::string name,
                                             PunctPattern pattern,
                                             SelectOptions options = {}) {
    return std::make_unique<Select>(
        std::move(name),
        [pattern = std::move(pattern)](const Tuple& t) {
          return pattern.Matches(t);
        },
        options);
  }

  Status ProcessTuple(int, const Tuple& tuple) override {
    if (guards_.Blocks(tuple)) {
      ++stats_.input_guard_drops;
      return Status::OK();
    }
    if (predicate_(tuple)) Emit(0, tuple);
    return Status::OK();
  }

  Status ProcessPage(int port, Page&& page, TimeMs* tick) override {
    // Stateless filter: run the whole page through a tight loop with
    // no per-tuple virtual dispatch.
    if (!ctx()->PagedEmissionPreferred()) {
      page.EnsureRowLayout();  // per-element emission needs rows
      for (StreamElement& e : page.mutable_elements()) {
        if (tick) ++*tick;
        if (e.is_tuple()) {
          ++stats_.tuples_in;
          const Tuple& tuple = e.tuple();
          if (guards_.Blocks(tuple)) {
            ++stats_.input_guard_drops;
            continue;
          }
          if (predicate_(tuple)) Emit(0, std::move(e.mutable_tuple()));
        } else if (e.is_punct()) {
          NSTREAM_RETURN_NOT_OK(ProcessPunctuation(port, e.punct()));
        } else {
          NSTREAM_RETURN_NOT_OK(ProcessEos(port));
        }
      }
      return Status::OK();
    }
    // Paged path: filter IN PLACE and forward the page itself, so the
    // page's arena (which owns every surviving tuple's payload) makes
    // the hop untouched — zero copies, zero allocations. The
    // compaction + mixed-page handling lives in Operator::
    // FilterPageInPlace (shared with Pace).
    return FilterPageInPlace(port, std::move(page), tick,
                             [this](const Tuple& tuple) {
                               if (guards_.Blocks(tuple)) {
                                 ++stats_.input_guard_drops;
                                 return false;
                               }
                               return predicate_(tuple);
                             });
  }

  Status ProcessPunctuation(int port, const Punctuation& punct) override {
    // Embedded punctuation both expires dead guards (§4.4) and passes
    // through (a filter only removes tuples, so completeness claims
    // survive).
    guards_.ExpireCovered(punct);
    return Operator::ProcessPunctuation(port, punct);
  }

  Status ProcessFeedback(int, const FeedbackPunctuation& fb) override {
    if (options_.feedback_policy == FeedbackPolicy::kIgnore) {
      ++stats_.feedback_ignored;
      return Status::OK();
    }
    if (fb.pattern().arity() != output_schema(0)->num_fields()) {
      ++stats_.feedback_ignored;
      return Status::OK();
    }
    switch (fb.intent()) {
      case FeedbackIntent::kAssumed:
        if (PolicyAtLeast(options_.feedback_policy,
                          FeedbackPolicy::kExploit)) {
          guards_.Add(fb.pattern());
          ctx()->PurgeInput(0, fb.pattern());
        }
        break;
      case FeedbackIntent::kDesired:
      case FeedbackIntent::kDemanded:
        ctx()->PrioritizeInput(0, fb.pattern());
        break;
    }
    if (PolicyAtLeast(options_.feedback_policy,
                      FeedbackPolicy::kExploitAndPropagate)) {
      RelayFeedback(0, fb);  // identity schema: safe as-is (§4.2)
    }
    return Status::OK();
  }

  const GuardSet& guards() const { return guards_; }

 private:
  Predicate predicate_;
  SelectOptions options_;
  GuardSet guards_;
};

}  // namespace nstream

#endif  // NSTREAM_OPS_SELECT_H_
