#include "punct/compiled_pattern.h"

namespace nstream {
namespace {

bool IsIntLike(const Value& v) {
  return v.type() == ValueType::kInt64 ||
         v.type() == ValueType::kTimestamp;
}

// An int64 operand that double precision cannot represent exactly
// must not be compared through its double image: the interpreted
// matcher compares it against int64 values exactly.
bool IntOperandSafeInDouble(const Value& v) {
  if (!IsIntLike(v)) return true;
  int64_t x = v.int64_value();
  return x > -Value::kDoubleExactBound && x < Value::kDoubleExactBound;
}

double DoubleImage(const Value& v) {
  return v.type() == ValueType::kDouble
             ? v.double_value()
             : static_cast<double>(v.int64_value());
}

}  // namespace

CompiledPattern::CompiledPattern(PunctPattern pattern)
    : pattern_(std::move(pattern)) {
  for (int i = 0; i < pattern_.arity(); ++i) {
    const AttrPattern& ap = pattern_.attr(i);
    if (ap.is_wildcard()) continue;
    Check c;
    c.index = i;
    c.op = ap.op();
    if (c.op != PatternOp::kIsNull && c.op != PatternOp::kNotNull) {
      const Value& lo = ap.operand();
      bool has_hi = c.op == PatternOp::kRange;
      const Value& hi = ap.hi();
      if (IsIntLike(lo) && (!has_hi || IsIntLike(hi))) {
        c.cls = OperandClass::kInt;
        c.ilo = lo.int64_value();
        c.ihi = has_hi ? hi.int64_value() : 0;
        c.dlo = static_cast<double>(c.ilo);
        c.dhi = static_cast<double>(c.ihi);
      } else if (lo.is_numeric() && (!has_hi || hi.is_numeric()) &&
                 IntOperandSafeInDouble(lo) &&
                 (!has_hi || IntOperandSafeInDouble(hi))) {
        // Mixed int/double operands (only possible for Range): the
        // interpreted matcher compares an int64 value against an int64
        // bound exactly, so the bound is lowered to double only when
        // double precision preserves it.
        c.cls = OperandClass::kDouble;
        c.dlo = DoubleImage(lo);
        c.dhi = has_hi ? DoubleImage(hi) : 0;
      } else {
        c.cls = OperandClass::kGeneric;
      }
    }
    checks_.push_back(c);
  }
}

}  // namespace nstream
