#include "punct/compiled_pattern.h"

namespace nstream {
namespace {

bool IsIntLike(const Value& v) {
  return v.type() == ValueType::kInt64 ||
         v.type() == ValueType::kTimestamp;
}

// An int64 operand that double precision cannot represent exactly
// must not be compared through its double image: the interpreted
// matcher compares it against int64 values exactly.
bool IntOperandSafeInDouble(const Value& v) {
  if (!IsIntLike(v)) return true;
  int64_t x = v.int64_value();
  return x > -Value::kDoubleExactBound && x < Value::kDoubleExactBound;
}

double DoubleImage(const Value& v) {
  return v.type() == ValueType::kDouble
             ? v.double_value()
             : static_cast<double>(v.int64_value());
}

}  // namespace

uint64_t HashPunctPattern(const PunctPattern& p) {
  // FNV-1a over (arity, per-attr op, operand hashes). Wildcards
  // contribute their op byte only, so patterns differing in any
  // constrained position diverge.
  uint64_t h = 0xcbf29ce484222325ULL;
  auto mix = [&h](uint64_t x) {
    h ^= x;
    h *= 0x100000001b3ULL;
  };
  mix(static_cast<uint64_t>(p.arity()));
  for (int i = 0; i < p.arity(); ++i) {
    const AttrPattern& ap = p.attr(i);
    mix(static_cast<uint64_t>(ap.op()));
    if (ap.is_wildcard()) continue;
    mix(static_cast<uint64_t>(ap.operand().Hash()));
    if (ap.op() == PatternOp::kRange) {
      mix(static_cast<uint64_t>(ap.hi().Hash()));
    }
  }
  return h;
}

CompiledPatternCache::CompiledPatternCache(size_t capacity)
    : capacity_(capacity < 1 ? 1 : capacity) {
  slots_.reserve(capacity_);
}

CompiledPatternCache& CompiledPatternCache::Global() {
  static CompiledPatternCache* cache = new CompiledPatternCache();
  return *cache;
}

std::shared_ptr<const CompiledPattern> CompiledPatternCache::Get(
    const PunctPattern& p) {
  const uint64_t hash = HashPunctPattern(p);
  std::lock_guard<std::mutex> lock(mu_);
  ++tick_;
  for (Slot& s : slots_) {
    // Hash narrows; deep equality confirms (a colliding pattern must
    // not be handed someone else's compilation).
    if (s.hash == hash && s.compiled->pattern() == p) {
      s.last_used = tick_;
      ++hits_;
      return s.compiled;
    }
  }
  ++misses_;
  Slot slot;
  slot.hash = hash;
  slot.last_used = tick_;
  slot.compiled = std::make_shared<const CompiledPattern>(p);
  if (slots_.size() >= capacity_) {
    // Evict the least-recently-used entry. Holders of the evicted
    // shared_ptr keep their compilation alive.
    size_t victim = 0;
    for (size_t i = 1; i < slots_.size(); ++i) {
      if (slots_[i].last_used < slots_[victim].last_used) victim = i;
    }
    slots_[victim] = std::move(slot);
    return slots_[victim].compiled;
  }
  slots_.push_back(std::move(slot));
  return slots_.back().compiled;
}

uint64_t CompiledPatternCache::hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return hits_;
}

uint64_t CompiledPatternCache::misses() const {
  std::lock_guard<std::mutex> lock(mu_);
  return misses_;
}

size_t CompiledPatternCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return slots_.size();
}

void CompiledPatternCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  slots_.clear();
  tick_ = hits_ = misses_ = 0;
}

CompiledPattern::CompiledPattern(PunctPattern pattern)
    : pattern_(std::move(pattern)) {
  for (int i = 0; i < pattern_.arity(); ++i) {
    const AttrPattern& ap = pattern_.attr(i);
    if (ap.is_wildcard()) continue;
    Check c;
    c.index = i;
    c.op = ap.op();
    if (c.op != PatternOp::kIsNull && c.op != PatternOp::kNotNull) {
      const Value& lo = ap.operand();
      bool has_hi = c.op == PatternOp::kRange;
      const Value& hi = ap.hi();
      if (IsIntLike(lo) && (!has_hi || IsIntLike(hi))) {
        c.cls = OperandClass::kInt;
        c.ilo = lo.int64_value();
        c.ihi = has_hi ? hi.int64_value() : 0;
        c.dlo = static_cast<double>(c.ilo);
        c.dhi = static_cast<double>(c.ihi);
      } else if (lo.is_numeric() && (!has_hi || hi.is_numeric()) &&
                 IntOperandSafeInDouble(lo) &&
                 (!has_hi || IntOperandSafeInDouble(hi))) {
        // Mixed int/double operands (only possible for Range): the
        // interpreted matcher compares an int64 value against an int64
        // bound exactly, so the bound is lowered to double only when
        // double precision preserves it.
        c.cls = OperandClass::kDouble;
        c.dlo = DoubleImage(lo);
        c.dhi = has_hi ? DoubleImage(hi) : 0;
      } else {
        c.cls = OperandClass::kGeneric;
      }
    }
    checks_.push_back(c);
  }
}

}  // namespace nstream
