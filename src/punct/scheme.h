// Punctuation schemes and feedback supportability (§4.4, building on
// Tucker et al. [14]). An attribute is *delimited* if the stream's
// punctuation scheme guarantees embedded punctuation will eventually
// cover any bounded subset of it (e.g. a progressing timestamp, or a
// finite-lifetime auction id). Feedback whose constrained attributes
// are all delimited is "supportable": guard state installed for it is
// guaranteed to be reclaimed. Feedback on undelimited attributes (the
// paper's "don't show bids more than $1.00") would accumulate state
// forever — the framework flags it.

#ifndef NSTREAM_PUNCT_SCHEME_H_
#define NSTREAM_PUNCT_SCHEME_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "punct/feedback.h"
#include "punct/punct_pattern.h"
#include "types/schema.h"

namespace nstream {

/// How an attribute is covered by embedded punctuation.
enum class Delimitation : uint8_t {
  kNone = 0,     // never punctuated (e.g. a bid amount)
  kProgressing,  // punctuated by a moving low-watermark (timestamps)
  kFinite,       // punctuated per finite group lifetime (auction ids)
};

/// A punctuation scheme for one stream schema: per-attribute
/// delimitation declarations.
class PunctScheme {
 public:
  PunctScheme() = default;
  explicit PunctScheme(std::vector<Delimitation> attrs)
      : attrs_(std::move(attrs)) {}

  /// Scheme with no delimited attributes, matching `arity`.
  static PunctScheme Undelimited(int arity) {
    return PunctScheme(std::vector<Delimitation>(
        static_cast<size_t>(arity), Delimitation::kNone));
  }

  int arity() const { return static_cast<int>(attrs_.size()); }
  Delimitation attr(int i) const { return attrs_[static_cast<size_t>(i)]; }

  PunctScheme With(int i, Delimitation d) const {
    PunctScheme out = *this;
    out.attrs_[static_cast<size_t>(i)] = d;
    return out;
  }

  bool IsDelimited(int i) const {
    return attrs_[static_cast<size_t>(i)] != Delimitation::kNone;
  }

 private:
  std::vector<Delimitation> attrs_;
};

/// Result of a supportability check.
struct SupportabilityReport {
  bool supportable = true;
  // Constrained attribute positions that are NOT delimited; state
  // installed for them can never be reclaimed via punctuation.
  std::vector<int> undelimited_attrs;

  std::string ToString() const;
};

/// §4.4 check: feedback is supportable under `scheme` iff every
/// constrained attribute of its pattern is delimited.
SupportabilityReport CheckSupportability(const PunctPattern& pattern,
                                         const PunctScheme& scheme);

/// Convenience overload for a full feedback message.
inline SupportabilityReport CheckSupportability(
    const FeedbackPunctuation& fb, const PunctScheme& scheme) {
  return CheckSupportability(fb.pattern(), scheme);
}

}  // namespace nstream

#endif  // NSTREAM_PUNCT_SCHEME_H_
