// PunctPattern: a conjunctive predicate over a whole schema — one
// AttrPattern per attribute. This is the "description of the subset of
// interest" carried by both embedded and feedback punctuation (§3).

#ifndef NSTREAM_PUNCT_PUNCT_PATTERN_H_
#define NSTREAM_PUNCT_PUNCT_PATTERN_H_

#include <initializer_list>
#include <string>
#include <vector>

#include "common/status.h"
#include "punct/attr_pattern.h"
#include "types/schema.h"
#include "types/tuple.h"

namespace nstream {

/// A pattern over an n-attribute schema. Tuples match iff every
/// attribute matches its AttrPattern (wildcards match anything).
class PunctPattern {
 public:
  PunctPattern() = default;
  explicit PunctPattern(std::vector<AttrPattern> attrs)
      : attrs_(std::move(attrs)) {}
  PunctPattern(std::initializer_list<AttrPattern> attrs)
      : attrs_(attrs) {}

  /// All-wildcard pattern of the given arity (matches every tuple).
  static PunctPattern AllWildcard(int arity) {
    return PunctPattern(std::vector<AttrPattern>(
        static_cast<size_t>(arity), AttrPattern::Any()));
  }

  int arity() const { return static_cast<int>(attrs_.size()); }
  const AttrPattern& attr(int i) const {
    return attrs_[static_cast<size_t>(i)];
  }
  const std::vector<AttrPattern>& attrs() const { return attrs_; }

  /// Replace the pattern at position `i` (builder-style).
  PunctPattern With(int i, AttrPattern p) const;

  /// True iff the tuple satisfies every attribute pattern. The tuple's
  /// arity must equal the pattern's (checked).
  bool Matches(const Tuple& t) const;

  /// Sound subsumption: every tuple matching `other` matches *this.
  /// Patterns of different arity never subsume each other.
  bool Subsumes(const PunctPattern& other) const;

  /// Positions whose pattern is not "*".
  std::vector<int> ConstrainedIndices() const;

  bool IsAllWildcard() const { return ConstrainedIndices().empty(); }

  /// Project onto `indices` (order preserved): used when mapping a
  /// pattern from an operator's output schema to an input schema.
  Result<PunctPattern> Project(const std::vector<int>& indices) const;

  /// Check arity and operand-type compatibility against a schema.
  Status Validate(const Schema& schema) const;

  bool operator==(const PunctPattern& other) const {
    return attrs_ == other.attrs_;
  }
  bool operator!=(const PunctPattern& other) const {
    return !(*this == other);
  }

  /// Paper-style rendering, e.g. "[*,≥50]".
  std::string ToString() const;

 private:
  std::vector<AttrPattern> attrs_;
};

/// Embedded punctuation (§3.1): flows *with* the data and asserts that
/// the subset described by `pattern` is complete — no future tuple in
/// this stream will match it.
class Punctuation {
 public:
  Punctuation() = default;
  explicit Punctuation(PunctPattern pattern)
      : pattern_(std::move(pattern)) {}

  const PunctPattern& pattern() const { return pattern_; }

  /// Does this punctuation promise that no tuple matching `p` will ever
  /// arrive again? True iff our pattern subsumes `p`.
  bool Covers(const PunctPattern& p) const {
    return pattern_.Subsumes(p);
  }

  bool operator==(const Punctuation& o) const {
    return pattern_ == o.pattern_;
  }

  std::string ToString() const { return pattern_.ToString(); }

 private:
  PunctPattern pattern_;
};

}  // namespace nstream

#endif  // NSTREAM_PUNCT_PUNCT_PATTERN_H_
