// PunctPattern: a conjunctive predicate over a whole schema — one
// AttrPattern per attribute. This is the "description of the subset of
// interest" carried by both embedded and feedback punctuation (§3).

#ifndef NSTREAM_PUNCT_PUNCT_PATTERN_H_
#define NSTREAM_PUNCT_PUNCT_PATTERN_H_

#include <initializer_list>
#include <string>
#include <vector>

#include "common/status.h"
#include "punct/attr_pattern.h"
#include "types/schema.h"
#include "types/tuple.h"

namespace nstream {

/// A pattern over an n-attribute schema. Tuples match iff every
/// attribute matches its AttrPattern (wildcards match anything).
class PunctPattern {
 public:
  PunctPattern() = default;
  explicit PunctPattern(std::vector<AttrPattern> attrs)
      : attrs_(std::move(attrs)) {}
  PunctPattern(std::initializer_list<AttrPattern> attrs)
      : attrs_(attrs) {}

  /// All-wildcard pattern of the given arity (matches every tuple).
  static PunctPattern AllWildcard(int arity) {
    return PunctPattern(std::vector<AttrPattern>(
        static_cast<size_t>(arity), AttrPattern::Any()));
  }

  int arity() const { return static_cast<int>(attrs_.size()); }
  const AttrPattern& attr(int i) const {
    return attrs_[static_cast<size_t>(i)];
  }
  const std::vector<AttrPattern>& attrs() const { return attrs_; }

  /// Replace the pattern at position `i` (builder-style).
  PunctPattern With(int i, AttrPattern p) const;

  /// True iff the tuple satisfies every attribute pattern. The tuple's
  /// arity must equal the pattern's (checked).
  bool Matches(const Tuple& t) const;

  /// Sound subsumption: every tuple matching `other` matches *this.
  /// Patterns of different arity never subsume each other.
  bool Subsumes(const PunctPattern& other) const;

  /// Positions whose pattern is not "*".
  std::vector<int> ConstrainedIndices() const;

  bool IsAllWildcard() const { return ConstrainedIndices().empty(); }

  /// Project onto `indices` (order preserved): used when mapping a
  /// pattern from an operator's output schema to an input schema.
  Result<PunctPattern> Project(const std::vector<int>& indices) const;

  /// Check arity and operand-type compatibility against a schema.
  Status Validate(const Schema& schema) const;

  bool operator==(const PunctPattern& other) const {
    return attrs_ == other.attrs_;
  }
  bool operator!=(const PunctPattern& other) const {
    return !(*this == other);
  }

  /// Paper-style rendering, e.g. "[*,≥50]".
  std::string ToString() const;

 private:
  std::vector<AttrPattern> attrs_;
};

/// Embedded punctuation (§3.1): flows *with* the data and asserts that
/// the subset described by `pattern` is complete — no future tuple in
/// this stream will match it.
///
/// A punctuation with a nonzero `barrier_id` is a CHECKPOINT BARRIER:
/// it carries no completeness claim (its pattern is empty) and exists
/// only as an in-band consistent-cut marker for the checkpoint
/// coordinator. Barriers are injected at sources and stripped by the
/// scheduler before pages reach operators, so operator code never
/// observes one — but they ride the normal punctuation machinery
/// (immediate page flush, in-order delivery), which is exactly what
/// makes the cut punctuation-aligned.
class Punctuation {
 public:
  Punctuation() = default;
  explicit Punctuation(PunctPattern pattern)
      : pattern_(std::move(pattern)) {}

  /// Checkpoint-barrier marker for checkpoint `id` (must be nonzero).
  static Punctuation Barrier(int64_t id) {
    Punctuation p;
    p.barrier_id_ = id;
    return p;
  }

  const PunctPattern& pattern() const { return pattern_; }

  int64_t barrier_id() const { return barrier_id_; }
  bool is_barrier() const { return barrier_id_ != 0; }

  /// Does this punctuation promise that no tuple matching `p` will ever
  /// arrive again? True iff our pattern subsumes `p`. Barriers promise
  /// nothing (their pattern is empty and subsumes only same-arity
  /// patterns, i.e. none in practice).
  bool Covers(const PunctPattern& p) const {
    return pattern_.Subsumes(p);
  }

  bool operator==(const Punctuation& o) const {
    return pattern_ == o.pattern_ && barrier_id_ == o.barrier_id_;
  }

  std::string ToString() const {
    if (is_barrier()) {
      return "<barrier#" + std::to_string(barrier_id_) + ">";
    }
    return pattern_.ToString();
  }

 private:
  PunctPattern pattern_;
  int64_t barrier_id_ = 0;
};

}  // namespace nstream

#endif  // NSTREAM_PUNCT_PUNCT_PATTERN_H_
