#include "punct/attr_pattern.h"

namespace nstream {
namespace {

// c = Compare(a, b) helper that treats incomparable pairs as "unknown"
// and makes the caller fail conservatively. Allocation-free.
bool CmpKnown(const Value& a, const Value& b, int* out) {
  return a.TryCompare(b, out);
}

}  // namespace

const char* PatternOpName(PatternOp op) {
  switch (op) {
    case PatternOp::kAny:
      return "any";
    case PatternOp::kEq:
      return "eq";
    case PatternOp::kNe:
      return "ne";
    case PatternOp::kLt:
      return "lt";
    case PatternOp::kLe:
      return "le";
    case PatternOp::kGt:
      return "gt";
    case PatternOp::kGe:
      return "ge";
    case PatternOp::kRange:
      return "range";
    case PatternOp::kIsNull:
      return "is_null";
    case PatternOp::kNotNull:
      return "not_null";
  }
  return "?";
}

bool AttrPattern::Matches(const Value& v) const {
  if (op_ == PatternOp::kAny) return true;
  if (op_ == PatternOp::kIsNull) return v.is_null();
  if (op_ == PatternOp::kNotNull) return !v.is_null();
  // Comparison patterns never match NULL (SQL-style).
  if (v.is_null()) return false;
  int c;
  switch (op_) {
    case PatternOp::kEq:
      return CmpKnown(v, operand_, &c) && c == 0;
    case PatternOp::kNe:
      return CmpKnown(v, operand_, &c) && c != 0;
    case PatternOp::kLt:
      return CmpKnown(v, operand_, &c) && c < 0;
    case PatternOp::kLe:
      return CmpKnown(v, operand_, &c) && c <= 0;
    case PatternOp::kGt:
      return CmpKnown(v, operand_, &c) && c > 0;
    case PatternOp::kGe:
      return CmpKnown(v, operand_, &c) && c >= 0;
    case PatternOp::kRange: {
      int clo, chi;
      return CmpKnown(v, operand_, &clo) && clo >= 0 &&
             CmpKnown(v, hi_, &chi) && chi <= 0;
    }
    default:
      return false;
  }
}

bool AttrPattern::Subsumes(const AttrPattern& other) const {
  if (op_ == PatternOp::kAny) return true;
  if (other.op_ == PatternOp::kAny) return false;

  // NULL handling first: comparison ops (and kNotNull) match only
  // non-null values; kIsNull matches only NULL.
  if (op_ == PatternOp::kIsNull) return other.op_ == PatternOp::kIsNull;
  if (op_ == PatternOp::kNotNull) return other.op_ != PatternOp::kIsNull;
  if (other.op_ == PatternOp::kIsNull) return false;
  if (other.op_ == PatternOp::kNotNull) return false;  // broader set

  int c;  // scratch for comparisons
  const Value& a = operand_;
  switch (op_) {
    case PatternOp::kEq:
      switch (other.op_) {
        case PatternOp::kEq:
          return CmpKnown(other.operand_, a, &c) && c == 0;
        case PatternOp::kRange: {
          int cl, ch;
          return CmpKnown(other.operand_, a, &cl) && cl == 0 &&
                 CmpKnown(other.hi_, a, &ch) && ch == 0;
        }
        default:
          return false;
      }
    case PatternOp::kNe:
      switch (other.op_) {
        case PatternOp::kEq:
          return CmpKnown(other.operand_, a, &c) && c != 0;
        case PatternOp::kNe:
          return CmpKnown(other.operand_, a, &c) && c == 0;
        case PatternOp::kLt:  // x < b avoids a iff a >= b
          return CmpKnown(a, other.operand_, &c) && c >= 0;
        case PatternOp::kLe:  // x <= b avoids a iff a > b
          return CmpKnown(a, other.operand_, &c) && c > 0;
        case PatternOp::kGt:  // x > b avoids a iff a <= b
          return CmpKnown(a, other.operand_, &c) && c <= 0;
        case PatternOp::kGe:  // x >= b avoids a iff a < b
          return CmpKnown(a, other.operand_, &c) && c < 0;
        case PatternOp::kRange: {
          int cl, ch;
          // a outside [lo, hi]
          return (CmpKnown(a, other.operand_, &cl) && cl < 0) ||
                 (CmpKnown(a, other.hi_, &ch) && ch > 0);
        }
        default:
          return false;
      }
    case PatternOp::kLt:
      switch (other.op_) {
        case PatternOp::kEq:
          return CmpKnown(other.operand_, a, &c) && c < 0;
        case PatternOp::kLt:
          return CmpKnown(other.operand_, a, &c) && c <= 0;
        case PatternOp::kLe:
          return CmpKnown(other.operand_, a, &c) && c < 0;
        case PatternOp::kRange:
          return CmpKnown(other.hi_, a, &c) && c < 0;
        default:
          return false;
      }
    case PatternOp::kLe:
      switch (other.op_) {
        case PatternOp::kEq:
          return CmpKnown(other.operand_, a, &c) && c <= 0;
        case PatternOp::kLt:
          return CmpKnown(other.operand_, a, &c) && c <= 0;
        case PatternOp::kLe:
          return CmpKnown(other.operand_, a, &c) && c <= 0;
        case PatternOp::kRange:
          return CmpKnown(other.hi_, a, &c) && c <= 0;
        default:
          return false;
      }
    case PatternOp::kGt:
      switch (other.op_) {
        case PatternOp::kEq:
          return CmpKnown(other.operand_, a, &c) && c > 0;
        case PatternOp::kGt:
          return CmpKnown(other.operand_, a, &c) && c >= 0;
        case PatternOp::kGe:
          return CmpKnown(other.operand_, a, &c) && c > 0;
        case PatternOp::kRange:
          return CmpKnown(other.operand_, a, &c) && c > 0;
        default:
          return false;
      }
    case PatternOp::kGe:
      switch (other.op_) {
        case PatternOp::kEq:
          return CmpKnown(other.operand_, a, &c) && c >= 0;
        case PatternOp::kGt:
          return CmpKnown(other.operand_, a, &c) && c >= 0;
        case PatternOp::kGe:
          return CmpKnown(other.operand_, a, &c) && c >= 0;
        case PatternOp::kRange:
          return CmpKnown(other.operand_, a, &c) && c >= 0;
        default:
          return false;
      }
    case PatternOp::kRange:
      switch (other.op_) {
        case PatternOp::kEq: {
          int cl, ch;
          return CmpKnown(other.operand_, a, &cl) && cl >= 0 &&
                 CmpKnown(other.operand_, hi_, &ch) && ch <= 0;
        }
        case PatternOp::kRange: {
          int cl, ch;
          return CmpKnown(other.operand_, a, &cl) && cl >= 0 &&
                 CmpKnown(other.hi_, hi_, &ch) && ch <= 0;
        }
        default:
          return false;
      }
    default:
      return false;
  }
}

bool AttrPattern::operator==(const AttrPattern& other) const {
  if (op_ != other.op_) return false;
  switch (op_) {
    case PatternOp::kAny:
    case PatternOp::kIsNull:
    case PatternOp::kNotNull:
      return true;
    case PatternOp::kRange:
      return operand_ == other.operand_ && hi_ == other.hi_;
    default:
      return operand_ == other.operand_;
  }
}

std::string AttrPattern::ToString() const {
  switch (op_) {
    case PatternOp::kAny:
      return "*";
    case PatternOp::kEq:
      return operand_.ToString();  // paper style: [7,3,*]
    case PatternOp::kNe:
      return "\xE2\x89\xA0" + operand_.ToString();  // ≠
    case PatternOp::kLt:
      return "<" + operand_.ToString();
    case PatternOp::kLe:
      return "\xE2\x89\xA4" + operand_.ToString();  // ≤
    case PatternOp::kGt:
      return ">" + operand_.ToString();
    case PatternOp::kGe:
      return "\xE2\x89\xA5" + operand_.ToString();  // ≥
    case PatternOp::kRange:
      return "[" + operand_.ToString() + ".." + hi_.ToString() + "]";
    case PatternOp::kIsNull:
      return "null";
    case PatternOp::kNotNull:
      return "!null";
  }
  return "?";
}

}  // namespace nstream
