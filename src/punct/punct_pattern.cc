#include "punct/punct_pattern.h"

#include "common/string_util.h"

namespace nstream {

PunctPattern PunctPattern::With(int i, AttrPattern p) const {
  PunctPattern out = *this;
  out.attrs_[static_cast<size_t>(i)] = std::move(p);
  return out;
}

bool PunctPattern::Matches(const Tuple& t) const {
  if (t.size() != arity()) return false;
  for (int i = 0; i < arity(); ++i) {
    if (!attrs_[static_cast<size_t>(i)].Matches(t.value(i))) return false;
  }
  return true;
}

bool PunctPattern::Subsumes(const PunctPattern& other) const {
  if (arity() != other.arity()) return false;
  for (int i = 0; i < arity(); ++i) {
    if (!attrs_[static_cast<size_t>(i)].Subsumes(
            other.attrs_[static_cast<size_t>(i)])) {
      return false;
    }
  }
  return true;
}

std::vector<int> PunctPattern::ConstrainedIndices() const {
  std::vector<int> out;
  for (int i = 0; i < arity(); ++i) {
    if (!attrs_[static_cast<size_t>(i)].is_wildcard()) out.push_back(i);
  }
  return out;
}

Result<PunctPattern> PunctPattern::Project(
    const std::vector<int>& indices) const {
  std::vector<AttrPattern> out;
  out.reserve(indices.size());
  for (int i : indices) {
    if (i < 0 || i >= arity()) {
      return Status::OutOfRange(
          StringPrintf("pattern projection index %d out of range "
                       "(arity %d)",
                       i, arity()));
    }
    out.push_back(attrs_[static_cast<size_t>(i)]);
  }
  return PunctPattern(std::move(out));
}

Status PunctPattern::Validate(const Schema& schema) const {
  if (arity() != schema.num_fields()) {
    return Status::SchemaMismatch(
        StringPrintf("pattern arity %d vs schema arity %d", arity(),
                     schema.num_fields()));
  }
  for (int i = 0; i < arity(); ++i) {
    const AttrPattern& p = attrs_[static_cast<size_t>(i)];
    switch (p.op()) {
      case PatternOp::kAny:
      case PatternOp::kIsNull:
      case PatternOp::kNotNull:
        continue;
      default:
        break;
    }
    const Field& f = schema.field(i);
    const Value& v = p.operand();
    bool compatible = false;
    switch (f.type) {
      case ValueType::kInt64:
      case ValueType::kDouble:
      case ValueType::kTimestamp:
        compatible = v.is_numeric();
        break;
      case ValueType::kString:
        compatible = v.type() == ValueType::kString;
        break;
      case ValueType::kBool:
        compatible = v.type() == ValueType::kBool;
        break;
      case ValueType::kNull:
        compatible = true;
        break;
    }
    if (!compatible) {
      return Status::SchemaMismatch(StringPrintf(
          "pattern operand %s incompatible with attribute %s:%s",
          v.ToString().c_str(), f.name.c_str(), ValueTypeName(f.type)));
    }
  }
  return Status::OK();
}

std::string PunctPattern::ToString() const {
  std::vector<std::string> parts;
  parts.reserve(attrs_.size());
  for (const AttrPattern& p : attrs_) parts.push_back(p.ToString());
  return "[" + Join(parts, ",") + "]";
}

}  // namespace nstream
