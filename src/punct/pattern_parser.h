// Textual punctuation syntax, used by tests, examples, and logs. The
// grammar follows the paper's notation with ASCII fallbacks:
//
//   feedback   := intent pattern
//   intent     := "¬" | "~" | "?" | "!"
//   pattern    := "[" attr ("," attr)* "]"
//   attr       := "*" | "null" | "!null" | cmp value
//               | "[" value ".." value "]"
//   cmp        := "" (equality) | "=" | "!=" | "≠" | "<" | "<=" | "≤"
//               | ">" | ">=" | "≥"
//   value      := int | double (with '.') | 'string' | t:int
//               | true | false
//
// Examples: "[*,≥50]", "~[*,3,4,*]", "?[7,3,*]", "![≤t:5000,*]".

#ifndef NSTREAM_PUNCT_PATTERN_PARSER_H_
#define NSTREAM_PUNCT_PATTERN_PARSER_H_

#include <string_view>

#include "common/status.h"
#include "punct/feedback.h"
#include "punct/punct_pattern.h"

namespace nstream {

/// Parse a bare pattern like "[*,≥50]".
Result<PunctPattern> ParsePattern(std::string_view text);

/// Parse a feedback punctuation with intent prefix like "¬[*,≥50]".
Result<FeedbackPunctuation> ParseFeedback(std::string_view text);

}  // namespace nstream

#endif  // NSTREAM_PUNCT_PATTERN_PARSER_H_
