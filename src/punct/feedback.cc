#include "punct/feedback.h"

namespace nstream {

const char* FeedbackIntentName(FeedbackIntent intent) {
  switch (intent) {
    case FeedbackIntent::kAssumed:
      return "assumed";
    case FeedbackIntent::kDesired:
      return "desired";
    case FeedbackIntent::kDemanded:
      return "demanded";
  }
  return "?";
}

const char* FeedbackIntentGlyph(FeedbackIntent intent) {
  switch (intent) {
    case FeedbackIntent::kAssumed:
      return "\xC2\xAC";  // ¬
    case FeedbackIntent::kDesired:
      return "?";
    case FeedbackIntent::kDemanded:
      return "!";
  }
  return "?";
}

std::string FeedbackPunctuation::ToString() const {
  return std::string(FeedbackIntentGlyph(intent_)) + pattern_.ToString();
}

}  // namespace nstream
