// FeedbackPunctuation (§3.2-§3.4): like embedded punctuation it carries
// a predicate describing a subset of the stream, but it flows *against*
// the stream direction, outside the data stream (on the control
// channel), and carries an additional piece of information: the intent.
//
//   assumed  (¬)  "I will ignore this subset — stop producing it."
//   desired  (?)  "Please prioritize this subset."
//   demanded (!)  "I need this subset now; partial results acceptable."

#ifndef NSTREAM_PUNCT_FEEDBACK_H_
#define NSTREAM_PUNCT_FEEDBACK_H_

#include <cstdint>
#include <string>

#include "common/clock.h"
#include "punct/punct_pattern.h"

namespace nstream {

/// The intent carried by a feedback punctuation (§3.4).
enum class FeedbackIntent : uint8_t {
  kAssumed = 0,  // ¬[...]  avoid producing the subset
  kDesired,      // ?[...]  prioritize the subset
  kDemanded,     // ![...]  produce the subset now, partials allowed
};

const char* FeedbackIntentName(FeedbackIntent intent);

/// Prefix glyph used in renderings: "¬", "?", "!".
const char* FeedbackIntentGlyph(FeedbackIntent intent);

/// A feedback punctuation message. Immutable payload plus provenance
/// metadata used for tracing, auditing, and experiment accounting.
class FeedbackPunctuation {
 public:
  FeedbackPunctuation() = default;
  FeedbackPunctuation(FeedbackIntent intent, PunctPattern pattern)
      : intent_(intent), pattern_(std::move(pattern)) {}

  static FeedbackPunctuation Assumed(PunctPattern p) {
    return FeedbackPunctuation(FeedbackIntent::kAssumed, std::move(p));
  }
  static FeedbackPunctuation Desired(PunctPattern p) {
    return FeedbackPunctuation(FeedbackIntent::kDesired, std::move(p));
  }
  static FeedbackPunctuation Demanded(PunctPattern p) {
    return FeedbackPunctuation(FeedbackIntent::kDemanded, std::move(p));
  }

  FeedbackIntent intent() const { return intent_; }
  const PunctPattern& pattern() const { return pattern_; }

  bool is_assumed() const { return intent_ == FeedbackIntent::kAssumed; }
  bool is_desired() const { return intent_ == FeedbackIntent::kDesired; }
  bool is_demanded() const {
    return intent_ == FeedbackIntent::kDemanded;
  }

  /// Id of the operator that originally issued the feedback (not the
  /// last relayer). 0 = unset.
  int64_t origin_op() const { return origin_op_; }
  void set_origin_op(int64_t id) { origin_op_ = id; }

  /// Number of relayers this feedback passed through (0 = direct).
  int hop_count() const { return hop_count_; }
  void set_hop_count(int h) { hop_count_ = h; }

  /// System time at which the feedback was issued; -1 = unset.
  TimeMs issued_at_ms() const { return issued_at_ms_; }
  void set_issued_at_ms(TimeMs t) { issued_at_ms_ = t; }

  /// For demanded punctuation: the deadline by which partial results
  /// are useful (§3.4's "margin of action"); -1 = none.
  TimeMs deadline_ms() const { return deadline_ms_; }
  void set_deadline_ms(TimeMs t) { deadline_ms_ = t; }

  /// Same intent and pattern (provenance ignored).
  bool EquivalentTo(const FeedbackPunctuation& o) const {
    return intent_ == o.intent_ && pattern_ == o.pattern_;
  }

  /// Paper-style rendering, e.g. "¬[*,≥50]".
  std::string ToString() const;

 private:
  FeedbackIntent intent_ = FeedbackIntent::kAssumed;
  PunctPattern pattern_;
  int64_t origin_op_ = 0;
  int hop_count_ = 0;
  TimeMs issued_at_ms_ = -1;
  TimeMs deadline_ms_ = -1;
};

}  // namespace nstream

#endif  // NSTREAM_PUNCT_FEEDBACK_H_
