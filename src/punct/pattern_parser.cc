#include "punct/pattern_parser.h"

#include <cctype>
#include <cstdlib>
#include <string>

#include "common/string_util.h"

namespace nstream {
namespace {

// Recursive-descent style cursor over the input text.
class Cursor {
 public:
  explicit Cursor(std::string_view s) : s_(s) {}

  void SkipWs() {
    while (pos_ < s_.size() && std::isspace(static_cast<unsigned char>(
                                   s_[pos_]))) {
      ++pos_;
    }
  }

  bool Eof() {
    SkipWs();
    return pos_ >= s_.size();
  }

  char Peek() {
    SkipWs();
    return pos_ < s_.size() ? s_[pos_] : '\0';
  }

  bool Consume(char c) {
    SkipWs();
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeStr(std::string_view lit) {
    SkipWs();
    if (s_.substr(pos_, lit.size()) == lit) {
      pos_ += lit.size();
      return true;
    }
    return false;
  }

  std::string_view Rest() const { return s_.substr(pos_); }
  size_t pos() const { return pos_; }

  Status Error(const std::string& what) const {
    return Status::InvalidArgument(
        StringPrintf("parse error at offset %zu: %s (input: '%.*s')",
                     pos_, what.c_str(), static_cast<int>(s_.size()),
                     s_.data()));
  }

 private:
  std::string_view s_;
  size_t pos_ = 0;
};

Result<Value> ParseValue(Cursor* c) {
  c->SkipWs();
  if (c->ConsumeStr("true")) return Value::Bool(true);
  if (c->ConsumeStr("false")) return Value::Bool(false);
  if (c->ConsumeStr("t:")) {
    std::string num;
    while (!c->Eof() && (std::isdigit(static_cast<unsigned char>(
                             c->Peek())) ||
                         c->Peek() == '-')) {
      num.push_back(c->Peek());
      c->Consume(c->Peek());
    }
    if (num.empty()) return c->Error("expected timestamp digits");
    return Value::Timestamp(std::strtoll(num.c_str(), nullptr, 10));
  }
  if (c->Peek() == '\'') {
    c->Consume('\'');
    std::string out;
    std::string_view rest = c->Rest();
    size_t i = 0;
    while (i < rest.size() && rest[i] != '\'') {
      out.push_back(rest[i]);
      ++i;
    }
    if (i >= rest.size()) return c->Error("unterminated string literal");
    // Advance past the content and closing quote.
    for (size_t k = 0; k < i; ++k) c->Consume(rest[k]);
    c->Consume('\'');
    return Value::String(std::move(out));
  }
  // Numeric literal.
  std::string num;
  bool is_double = false;
  while (true) {
    char p = c->Peek();
    if (std::isdigit(static_cast<unsigned char>(p)) || p == '-' ||
        p == '+') {
      num.push_back(p);
      c->Consume(p);
    } else if (p == '.') {
      // Distinguish "3.5" from the ".." of a range.
      std::string_view rest = c->Rest();
      if (rest.size() >= 2 && rest[1] == '.') break;
      is_double = true;
      num.push_back(p);
      c->Consume(p);
    } else if (p == 'e' || p == 'E') {
      is_double = true;
      num.push_back(p);
      c->Consume(p);
    } else {
      break;
    }
  }
  if (num.empty()) return c->Error("expected a value literal");
  if (is_double) return Value::Double(std::strtod(num.c_str(), nullptr));
  return Value::Int64(std::strtoll(num.c_str(), nullptr, 10));
}

Result<AttrPattern> ParseAttr(Cursor* c) {
  c->SkipWs();
  if (c->Consume('*')) return AttrPattern::Any();
  if (c->ConsumeStr("!null")) return AttrPattern::NotNull();
  if (c->ConsumeStr("null")) return AttrPattern::IsNull();

  if (c->Peek() == '[') {  // range [lo..hi]
    c->Consume('[');
    NSTREAM_ASSIGN_OR_RETURN(Value lo, ParseValue(c));
    if (!c->ConsumeStr("..")) return c->Error("expected '..' in range");
    NSTREAM_ASSIGN_OR_RETURN(Value hi, ParseValue(c));
    if (!c->Consume(']')) return c->Error("expected ']' closing range");
    return AttrPattern::Range(std::move(lo), std::move(hi));
  }

  // Comparison operator (UTF-8 glyphs first, then ASCII digraphs).
  enum class Op { kEq, kNe, kLt, kLe, kGt, kGe } op = Op::kEq;
  if (c->ConsumeStr("\xE2\x89\xA4")) {  // ≤
    op = Op::kLe;
  } else if (c->ConsumeStr("\xE2\x89\xA5")) {  // ≥
    op = Op::kGe;
  } else if (c->ConsumeStr("\xE2\x89\xA0")) {  // ≠
    op = Op::kNe;
  } else if (c->ConsumeStr("<=")) {
    op = Op::kLe;
  } else if (c->ConsumeStr(">=")) {
    op = Op::kGe;
  } else if (c->ConsumeStr("!=")) {
    op = Op::kNe;
  } else if (c->ConsumeStr("<")) {
    op = Op::kLt;
  } else if (c->ConsumeStr(">")) {
    op = Op::kGt;
  } else if (c->ConsumeStr("=")) {
    op = Op::kEq;
  }

  NSTREAM_ASSIGN_OR_RETURN(Value v, ParseValue(c));
  switch (op) {
    case Op::kEq:
      return AttrPattern::Eq(std::move(v));
    case Op::kNe:
      return AttrPattern::Ne(std::move(v));
    case Op::kLt:
      return AttrPattern::Lt(std::move(v));
    case Op::kLe:
      return AttrPattern::Le(std::move(v));
    case Op::kGt:
      return AttrPattern::Gt(std::move(v));
    case Op::kGe:
      return AttrPattern::Ge(std::move(v));
  }
  return c->Error("unreachable");
}

Result<PunctPattern> ParsePatternBody(Cursor* c) {
  if (!c->Consume('[')) return c->Error("expected '[' opening pattern");
  std::vector<AttrPattern> attrs;
  if (c->Peek() == ']') {
    c->Consume(']');
    return PunctPattern(std::move(attrs));
  }
  while (true) {
    NSTREAM_ASSIGN_OR_RETURN(AttrPattern a, ParseAttr(c));
    attrs.push_back(std::move(a));
    if (c->Consume(',')) continue;
    if (c->Consume(']')) break;
    return c->Error("expected ',' or ']' in pattern");
  }
  return PunctPattern(std::move(attrs));
}

}  // namespace

Result<PunctPattern> ParsePattern(std::string_view text) {
  Cursor c(text);
  NSTREAM_ASSIGN_OR_RETURN(PunctPattern p, ParsePatternBody(&c));
  if (!c.Eof()) return c.Error("trailing characters after pattern");
  return p;
}

Result<FeedbackPunctuation> ParseFeedback(std::string_view text) {
  Cursor c(text);
  FeedbackIntent intent;
  if (c.ConsumeStr("\xC2\xAC") || c.ConsumeStr("~")) {
    intent = FeedbackIntent::kAssumed;
  } else if (c.ConsumeStr("?")) {
    intent = FeedbackIntent::kDesired;
  } else if (c.ConsumeStr("!")) {
    intent = FeedbackIntent::kDemanded;
  } else {
    return c.Error("expected feedback intent prefix (¬/~, ?, !)");
  }
  NSTREAM_ASSIGN_OR_RETURN(PunctPattern p, ParsePatternBody(&c));
  if (!c.Eof()) return c.Error("trailing characters after feedback");
  return FeedbackPunctuation(intent, std::move(p));
}

}  // namespace nstream
