// AttrPattern: the per-attribute building block of punctuation. A
// punctuation like ¬[*,≥50] (paper §3.4) is a vector of these — here a
// wildcard followed by GreaterEq(50).

#ifndef NSTREAM_PUNCT_ATTR_PATTERN_H_
#define NSTREAM_PUNCT_ATTR_PATTERN_H_

#include <string>

#include "common/status.h"
#include "types/value.h"

namespace nstream {

/// Comparison shape of one attribute pattern.
enum class PatternOp : uint8_t {
  kAny = 0,   // "*"  — matches every value, including NULL
  kEq,        // = c
  kNe,        // ≠ c
  kLt,        // < c
  kLe,        // ≤ c
  kGt,        // > c
  kGe,        // ≥ c
  kRange,     // [lo .. hi], closed on both ends
  kIsNull,    // value is NULL (Experiment 1's "dirty" predicate)
  kNotNull,   // value is not NULL
};

const char* PatternOpName(PatternOp op);

/// A predicate over a single attribute. Immutable once built.
class AttrPattern {
 public:
  AttrPattern() : op_(PatternOp::kAny) {}

  static AttrPattern Any() { return AttrPattern(); }
  static AttrPattern Eq(Value v) {
    return AttrPattern(PatternOp::kEq, std::move(v));
  }
  static AttrPattern Ne(Value v) {
    return AttrPattern(PatternOp::kNe, std::move(v));
  }
  static AttrPattern Lt(Value v) {
    return AttrPattern(PatternOp::kLt, std::move(v));
  }
  static AttrPattern Le(Value v) {
    return AttrPattern(PatternOp::kLe, std::move(v));
  }
  static AttrPattern Gt(Value v) {
    return AttrPattern(PatternOp::kGt, std::move(v));
  }
  static AttrPattern Ge(Value v) {
    return AttrPattern(PatternOp::kGe, std::move(v));
  }
  static AttrPattern Range(Value lo, Value hi) {
    AttrPattern p(PatternOp::kRange, std::move(lo));
    p.hi_ = std::move(hi);
    return p;
  }
  static AttrPattern IsNull() {
    return AttrPattern(PatternOp::kIsNull, Value::Null());
  }
  static AttrPattern NotNull() {
    return AttrPattern(PatternOp::kNotNull, Value::Null());
  }

  PatternOp op() const { return op_; }
  bool is_wildcard() const { return op_ == PatternOp::kAny; }
  const Value& operand() const { return operand_; }
  const Value& hi() const { return hi_; }

  /// Does `v` satisfy this pattern? Comparison patterns never match
  /// NULL (SQL-style semantics); kAny matches everything.
  bool Matches(const Value& v) const;

  /// Sound subsumption test: true only if every value matching `other`
  /// also matches *this. (Conservative: may return false for exotic
  /// cross-op pairs, never incorrectly true.)
  bool Subsumes(const AttrPattern& other) const;

  /// Structural equality (same op and operands).
  bool operator==(const AttrPattern& other) const;
  bool operator!=(const AttrPattern& other) const {
    return !(*this == other);
  }

  /// Paper-style rendering: "*", "=5", "≥50", "[3..9]", "null".
  std::string ToString() const;

 private:
  AttrPattern(PatternOp op, Value operand)
      : op_(op), operand_(std::move(operand)) {}

  PatternOp op_;
  Value operand_;
  Value hi_;  // only for kRange
};

}  // namespace nstream

#endif  // NSTREAM_PUNCT_ATTR_PATTERN_H_
