// CompiledPattern: a PunctPattern pre-lowered for the tuple hot path.
// Pattern matching rides every guarded tuple, every queue purge/promote
// sweep, and every feedback exploit, so the interpreted
// attribute-by-attribute walk (wildcard test, Value::Compare dispatch)
// is worth compiling away: constrained indices are extracted once, and
// each constrained attribute gets a typed comparison plan — the
// dominant timestamp prefix/range patterns reduce to one or two int64
// compares with no allocation and no variant re-interpretation.

#ifndef NSTREAM_PUNCT_COMPILED_PATTERN_H_
#define NSTREAM_PUNCT_COMPILED_PATTERN_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "punct/punct_pattern.h"
#include "stream/columnar.h"
#include "types/tuple.h"

namespace nstream {

class CompiledPattern {
 public:
  /// Compiles the empty pattern (arity 0).
  CompiledPattern() = default;
  explicit CompiledPattern(PunctPattern pattern);

  const PunctPattern& pattern() const { return pattern_; }
  int arity() const { return pattern_.arity(); }
  /// No constrained attributes: matches every tuple of the right arity.
  bool always_true() const { return checks_.empty(); }

  /// Exactly PunctPattern::Matches, minus the interpretation overhead.
  bool Matches(const Tuple& t) const {
    if (t.size() != pattern_.arity()) return false;
    for (const Check& c : checks_) {
      if (!MatchCheck(c, t.value(c.index))) return false;
    }
    return true;
  }

  /// Matches() against one (physical) row of a columnar block — the
  /// columns stand in for the tuple's value span.
  bool MatchesRow(const ColumnarBlock& b, uint32_t row) const {
    if (static_cast<int>(b.cols()) != pattern_.arity()) return false;
    for (const Check& c : checks_) {
      if (!MatchCheck(c, b.column(c.index)[row])) return false;
    }
    return true;
  }

  /// Purge exploit over a columnar page: drop matching rows by
  /// editing the selection vector — survivors never move. When every
  /// check lowered to exact-integer operands AND its column is
  /// uniformly int64-imaged (the dominant timestamp-range purge), the
  /// per-value tag dispatch hoists out entirely: the row loop is raw
  /// unchecked_int64 compares over contiguous columns. Returns the
  /// number of rows dropped.
  int FilterColumnarPurge(ColumnarBlock* b) const {
    if (static_cast<int>(b->cols()) != pattern_.arity()) return 0;
    const int before = static_cast<int>(b->size());
    if (always_true()) {
      b->KeepIf([](uint32_t) { return false; });
      return before;
    }
    struct IntCheck {
      const Value* col;
      PatternOp op;
      int64_t lo, hi;
    };
    IntCheck ics[kMaxHoistedChecks];
    size_t n_ic = 0;
    bool all_int = checks_.size() <= kMaxHoistedChecks;
    for (const Check& c : checks_) {
      if (!all_int) break;
      if (c.op == PatternOp::kIsNull || c.op == PatternOp::kNotNull ||
          c.cls != OperandClass::kInt ||
          b->column_class(c.index) != ColumnClass::kInt64) {
        all_int = false;
        break;
      }
      ics[n_ic++] = {b->column(c.index), c.op, c.ilo, c.ihi};
    }
    if (all_int) {
      b->KeepIf([&](uint32_t r) {
        for (size_t k = 0; k < n_ic; ++k) {
          if (!ApplyOp<int64_t>(ics[k].op, ics[k].col[r].unchecked_int64(),
                                ics[k].lo, ics[k].hi)) {
            return true;  // check failed → row not matched → keep
          }
        }
        return false;  // all checks matched → purge
      });
    } else {
      b->KeepIf([&](uint32_t r) { return !MatchesRow(*b, r); });
    }
    return before - static_cast<int>(b->size());
  }

 private:
  // Hoisted-check scratch bound; patterns with more constrained
  // attributes (unheard of — exploits constrain 1-2) take the
  // row-wise path.
  static constexpr size_t kMaxHoistedChecks = 8;
  // How the operand(s) of a comparison check were classified at
  // compile time.
  enum class OperandClass : uint8_t {
    kInt,      // all operands int64/timestamp: exact integer compares
    kDouble,   // all numeric, at least one double: widened compares
    kGeneric,  // string/bool operands: fall back to AttrPattern
  };

  struct Check {
    int index = 0;
    PatternOp op = PatternOp::kAny;
    OperandClass cls = OperandClass::kGeneric;
    int64_t ilo = 0;  // operand (and range-hi) as exact integers
    int64_t ihi = 0;
    double dlo = 0;   // operand (and range-hi) double images
    double dhi = 0;
  };

  template <typename T>
  static bool ApplyOp(PatternOp op, T x, T lo, T hi) {
    switch (op) {
      case PatternOp::kEq:
        return x == lo;
      case PatternOp::kNe:
        return x != lo;
      case PatternOp::kLt:
        return x < lo;
      case PatternOp::kLe:
        return x <= lo;
      case PatternOp::kGt:
        return x > lo;
      case PatternOp::kGe:
        return x >= lo;
      case PatternOp::kRange:
        return x >= lo && x <= hi;
      default:
        return false;
    }
  }

  bool MatchCheck(const Check& c, const Value& v) const {
    if (c.op == PatternOp::kIsNull) return v.is_null();
    if (c.op == PatternOp::kNotNull) return !v.is_null();
    if (c.cls == OperandClass::kGeneric) {
      // String/bool operands, or numeric operands that cannot be
      // lowered exactly: interpret via the original pattern.
      return pattern_.attr(c.index).Matches(v);
    }
    // Raw-payload fast path over Value's flat representation: one tag
    // test routes the dominant timestamp/int64 shape to a pair of
    // integer compares on the raw 8-byte payload — no accessor
    // re-dispatch between the tag check and the comparison.
    if (v.is_int64_rep()) {
      int64_t x = v.unchecked_int64();
      if (c.cls == OperandClass::kInt) {
        return ApplyOp<int64_t>(c.op, x, c.ilo, c.ihi);
      }
      return ApplyOp<double>(c.op, static_cast<double>(x), c.dlo,
                             c.dhi);
    }
    if (v.type() == ValueType::kDouble) {
      return ApplyOp<double>(c.op, v.unchecked_double(), c.dlo, c.dhi);
    }
    if (v.is_null()) return false;  // comparison patterns never match NULL
    // Numeric operand vs string/bool value: incomparable, and
    // strings/bools are rare — interpret via the original pattern.
    return pattern_.attr(c.index).Matches(v);
  }

  PunctPattern pattern_;
  std::vector<Check> checks_;
};

/// Structural hash of a PunctPattern, compatible with its operator==
/// (equal patterns hash equally). Used as the cache probe key.
uint64_t HashPunctPattern(const PunctPattern& p);

/// CompiledPatternCache: pattern-identity-keyed cache of compilations.
///
/// A feedback punctuation relayed through a deep plan is exploited at
/// every hop, and every exploit site compiles its pattern: the queue
/// purge/promote sweeps, the join's table sweep, and each GuardSet
/// install. Hops whose schema maps are identities (Select / Project /
/// Impute / PACE chains, Exchange→shard fan-out where every shard
/// receives the same derived pattern) all see the *same* pattern, so a
/// small cache keyed by pattern identity collapses those N compiles
/// into one. Entries are shared_ptr so an evicted compilation stays
/// alive for whoever still holds it (e.g. a long-lived guard).
///
/// Thread-safe (mutex): lookups happen on the control/feedback path —
/// per relay hop, never per tuple — so a lock is fine there, and the
/// shared compilation is immutable afterwards.
class CompiledPatternCache {
 public:
  explicit CompiledPatternCache(size_t capacity = 64);

  /// The process-wide instance the engine's exploit sites share.
  static CompiledPatternCache& Global();

  /// Return the cached compilation of `p`, compiling on miss. Identity
  /// is structural: hash probe + PunctPattern::operator== confirm.
  std::shared_ptr<const CompiledPattern> Get(const PunctPattern& p);

  // Hit/miss counters (tests assert relay hops stop recompiling).
  uint64_t hits() const;
  uint64_t misses() const;
  size_t size() const;
  /// Drop all entries and zero the counters (test isolation).
  void Clear();

 private:
  struct Slot {
    uint64_t hash = 0;
    uint64_t last_used = 0;
    std::shared_ptr<const CompiledPattern> compiled;
  };

  mutable std::mutex mu_;
  size_t capacity_;
  std::vector<Slot> slots_;
  uint64_t tick_ = 0;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
};

}  // namespace nstream

#endif  // NSTREAM_PUNCT_COMPILED_PATTERN_H_
