// CompiledPattern: a PunctPattern pre-lowered for the tuple hot path.
// Pattern matching rides every guarded tuple, every queue purge/promote
// sweep, and every feedback exploit, so the interpreted
// attribute-by-attribute walk (wildcard test, Value::Compare dispatch)
// is worth compiling away: constrained indices are extracted once, and
// each constrained attribute gets a typed comparison plan — the
// dominant timestamp prefix/range patterns reduce to one or two int64
// compares with no allocation and no variant re-interpretation.

#ifndef NSTREAM_PUNCT_COMPILED_PATTERN_H_
#define NSTREAM_PUNCT_COMPILED_PATTERN_H_

#include <vector>

#include "punct/punct_pattern.h"
#include "types/tuple.h"

namespace nstream {

class CompiledPattern {
 public:
  /// Compiles the empty pattern (arity 0).
  CompiledPattern() = default;
  explicit CompiledPattern(PunctPattern pattern);

  const PunctPattern& pattern() const { return pattern_; }
  int arity() const { return pattern_.arity(); }
  /// No constrained attributes: matches every tuple of the right arity.
  bool always_true() const { return checks_.empty(); }

  /// Exactly PunctPattern::Matches, minus the interpretation overhead.
  bool Matches(const Tuple& t) const {
    if (t.size() != pattern_.arity()) return false;
    for (const Check& c : checks_) {
      if (!MatchCheck(c, t.value(c.index))) return false;
    }
    return true;
  }

 private:
  // How the operand(s) of a comparison check were classified at
  // compile time.
  enum class OperandClass : uint8_t {
    kInt,      // all operands int64/timestamp: exact integer compares
    kDouble,   // all numeric, at least one double: widened compares
    kGeneric,  // string/bool operands: fall back to AttrPattern
  };

  struct Check {
    int index = 0;
    PatternOp op = PatternOp::kAny;
    OperandClass cls = OperandClass::kGeneric;
    int64_t ilo = 0;  // operand (and range-hi) as exact integers
    int64_t ihi = 0;
    double dlo = 0;   // operand (and range-hi) double images
    double dhi = 0;
  };

  template <typename T>
  static bool ApplyOp(PatternOp op, T x, T lo, T hi) {
    switch (op) {
      case PatternOp::kEq:
        return x == lo;
      case PatternOp::kNe:
        return x != lo;
      case PatternOp::kLt:
        return x < lo;
      case PatternOp::kLe:
        return x <= lo;
      case PatternOp::kGt:
        return x > lo;
      case PatternOp::kGe:
        return x >= lo;
      case PatternOp::kRange:
        return x >= lo && x <= hi;
      default:
        return false;
    }
  }

  bool MatchCheck(const Check& c, const Value& v) const {
    if (c.op == PatternOp::kIsNull) return v.is_null();
    if (c.op == PatternOp::kNotNull) return !v.is_null();
    if (c.cls == OperandClass::kGeneric) {
      // String/bool operands, or numeric operands that cannot be
      // lowered exactly: interpret via the original pattern.
      return pattern_.attr(c.index).Matches(v);
    }
    switch (v.type()) {
      case ValueType::kInt64:
      case ValueType::kTimestamp: {
        int64_t x = v.int64_value();
        if (c.cls == OperandClass::kInt) {
          return ApplyOp<int64_t>(c.op, x, c.ilo, c.ihi);
        }
        return ApplyOp<double>(c.op, static_cast<double>(x), c.dlo,
                               c.dhi);
      }
      case ValueType::kDouble:
        return ApplyOp<double>(c.op, v.double_value(), c.dlo, c.dhi);
      case ValueType::kNull:
        return false;  // comparison patterns never match NULL
      default:
        // Numeric operand vs string/bool value: incomparable, and
        // strings/bools are rare — interpret via the original pattern.
        return pattern_.attr(c.index).Matches(v);
    }
  }

  PunctPattern pattern_;
  std::vector<Check> checks_;
};

}  // namespace nstream

#endif  // NSTREAM_PUNCT_COMPILED_PATTERN_H_
