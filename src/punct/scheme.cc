#include "punct/scheme.h"

#include "common/string_util.h"

namespace nstream {

std::string SupportabilityReport::ToString() const {
  if (supportable) return "supportable";
  std::vector<std::string> parts;
  parts.reserve(undelimited_attrs.size());
  for (int i : undelimited_attrs) parts.push_back(std::to_string(i));
  return "unsupportable (undelimited attrs: " + Join(parts, ",") + ")";
}

SupportabilityReport CheckSupportability(const PunctPattern& pattern,
                                         const PunctScheme& scheme) {
  SupportabilityReport report;
  for (int i : pattern.ConstrainedIndices()) {
    if (i >= scheme.arity() || !scheme.IsDelimited(i)) {
      report.supportable = false;
      report.undelimited_attrs.push_back(i);
    }
  }
  return report;
}

}  // namespace nstream
