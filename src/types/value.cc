#include "types/value.h"

#include <cmath>
#include <cstddef>
#include <functional>

#include "common/string_util.h"

namespace nstream {

// The inline-string representation stores up to 15 bytes across
// payload_, len_'s storage, and extra_, read/written through char
// pointers starting at the object's first byte. That is sound only if
// those members are contiguous with the tag as the final byte.
struct ValueLayoutAsserts {
  static_assert(offsetof(Value, payload_) == 0,
                "inline bytes must start at offset 0");
  static_assert(offsetof(Value, len_) == 8,
                "len_ must directly follow the payload");
  static_assert(offsetof(Value, extra_) == 12,
                "extra_ must directly follow len_");
  static_assert(offsetof(Value, tag_) == 15,
                "tag must be the final byte, after 15 inline bytes");
  static_assert(sizeof(Value) == 16, "Value must stay 16 bytes");
};

const char* ValueTypeName(ValueType t) {
  switch (t) {
    case ValueType::kNull:
      return "null";
    case ValueType::kBool:
      return "bool";
    case ValueType::kInt64:
      return "int64";
    case ValueType::kDouble:
      return "double";
    case ValueType::kString:
      return "string";
    case ValueType::kTimestamp:
      return "timestamp";
  }
  return "?";
}

Result<double> Value::AsDouble() const {
  switch (type()) {
    case ValueType::kInt64:
    case ValueType::kTimestamp:
      return static_cast<double>(payload_.i);
    case ValueType::kDouble:
      return payload_.d;
    case ValueType::kBool:
      return payload_.b ? 1.0 : 0.0;
    default:
      return Status::InvalidArgument(
          std::string("AsDouble on non-numeric value of type ") +
          ValueTypeName(type()));
  }
}

Result<int64_t> Value::AsInt64() const {
  switch (type()) {
    case ValueType::kInt64:
    case ValueType::kTimestamp:
      return payload_.i;
    case ValueType::kBool:
      return static_cast<int64_t>(payload_.b);
    default:
      return Status::InvalidArgument(
          std::string("AsInt64 on non-integral value of type ") +
          ValueTypeName(type()));
  }
}

Result<int> Value::Compare(const Value& other) const {
  int c;
  if (TryCompare(other, &c)) return c;
  return Status::InvalidArgument(
      StringPrintf("incomparable value types %s vs %s",
                   ValueTypeName(type()), ValueTypeName(other.type())));
}

std::string Value::ToString() const {
  switch (type()) {
    case ValueType::kNull:
      return "null";
    case ValueType::kBool:
      return payload_.b ? "true" : "false";
    case ValueType::kInt64:
      return std::to_string(payload_.i);
    case ValueType::kDouble:
      return FormatDouble(payload_.d);
    case ValueType::kString:
      return "'" + std::string(string_view()) + "'";
    case ValueType::kTimestamp:
      return "t:" + std::to_string(payload_.i);
  }
  return "?";
}

}  // namespace nstream
