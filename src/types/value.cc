#include "types/value.h"

#include <cmath>
#include <functional>

#include "common/string_util.h"

namespace nstream {

const char* ValueTypeName(ValueType t) {
  switch (t) {
    case ValueType::kNull:
      return "null";
    case ValueType::kBool:
      return "bool";
    case ValueType::kInt64:
      return "int64";
    case ValueType::kDouble:
      return "double";
    case ValueType::kString:
      return "string";
    case ValueType::kTimestamp:
      return "timestamp";
  }
  return "?";
}

Result<double> Value::AsDouble() const {
  switch (type_) {
    case ValueType::kInt64:
    case ValueType::kTimestamp:
      return static_cast<double>(std::get<int64_t>(rep_));
    case ValueType::kDouble:
      return std::get<double>(rep_);
    case ValueType::kBool:
      return std::get<bool>(rep_) ? 1.0 : 0.0;
    default:
      return Status::InvalidArgument(
          std::string("AsDouble on non-numeric value of type ") +
          ValueTypeName(type_));
  }
}

Result<int64_t> Value::AsInt64() const {
  switch (type_) {
    case ValueType::kInt64:
    case ValueType::kTimestamp:
      return std::get<int64_t>(rep_);
    case ValueType::kBool:
      return static_cast<int64_t>(std::get<bool>(rep_));
    default:
      return Status::InvalidArgument(
          std::string("AsInt64 on non-integral value of type ") +
          ValueTypeName(type_));
  }
}

Result<int> Value::Compare(const Value& other) const {
  // NULL sorts before everything; two NULLs are equal.
  if (is_null() || other.is_null()) {
    if (is_null() && other.is_null()) return 0;
    return is_null() ? -1 : 1;
  }
  if (is_numeric() && other.is_numeric()) {
    // Compare int64/timestamp pairs exactly; mix with double via
    // widening (fine for the magnitudes streams carry).
    if (type_ != ValueType::kDouble && other.type_ != ValueType::kDouble) {
      int64_t a = std::get<int64_t>(rep_);
      int64_t b = std::get<int64_t>(other.rep_);
      return a < b ? -1 : (a > b ? 1 : 0);
    }
    double a = AsDouble().value();
    double b = other.AsDouble().value();
    return a < b ? -1 : (a > b ? 1 : 0);
  }
  if (type_ == ValueType::kString && other.type_ == ValueType::kString) {
    int c = string_value().compare(other.string_value());
    return c < 0 ? -1 : (c > 0 ? 1 : 0);
  }
  if (type_ == ValueType::kBool && other.type_ == ValueType::kBool) {
    int a = bool_value();
    int b = other.bool_value();
    return a - b;
  }
  return Status::InvalidArgument(
      StringPrintf("incomparable value types %s vs %s",
                   ValueTypeName(type_), ValueTypeName(other.type_)));
}

bool Value::operator==(const Value& other) const {
  Result<int> c = Compare(other);
  return c.ok() && c.value() == 0;
}

size_t Value::Hash() const {
  switch (type_) {
    case ValueType::kNull:
      return 0x9ae16a3b2f90404fULL;
    case ValueType::kBool:
      return std::get<bool>(rep_) ? 0x1234567 : 0x7654321;
    case ValueType::kInt64:
    case ValueType::kTimestamp: {
      // Hash integers via their double image when exactly representable
      // so 42 == 42.0 implies equal hashes.
      int64_t v = std::get<int64_t>(rep_);
      double d = static_cast<double>(v);
      if (static_cast<int64_t>(d) == v) {
        return std::hash<double>{}(d);
      }
      return std::hash<int64_t>{}(v);
    }
    case ValueType::kDouble:
      return std::hash<double>{}(std::get<double>(rep_));
    case ValueType::kString:
      return std::hash<std::string>{}(std::get<std::string>(rep_));
  }
  return 0;
}

std::string Value::ToString() const {
  switch (type_) {
    case ValueType::kNull:
      return "null";
    case ValueType::kBool:
      return std::get<bool>(rep_) ? "true" : "false";
    case ValueType::kInt64:
      return std::to_string(std::get<int64_t>(rep_));
    case ValueType::kDouble:
      return FormatDouble(std::get<double>(rep_));
    case ValueType::kString:
      return "'" + std::get<std::string>(rep_) + "'";
    case ValueType::kTimestamp:
      return "t:" + std::to_string(std::get<int64_t>(rep_));
  }
  return "?";
}

}  // namespace nstream
