#include "types/value.h"

#include <cmath>
#include <functional>

#include "common/string_util.h"

namespace nstream {

const char* ValueTypeName(ValueType t) {
  switch (t) {
    case ValueType::kNull:
      return "null";
    case ValueType::kBool:
      return "bool";
    case ValueType::kInt64:
      return "int64";
    case ValueType::kDouble:
      return "double";
    case ValueType::kString:
      return "string";
    case ValueType::kTimestamp:
      return "timestamp";
  }
  return "?";
}

Result<double> Value::AsDouble() const {
  switch (type_) {
    case ValueType::kInt64:
    case ValueType::kTimestamp:
      return static_cast<double>(std::get<int64_t>(rep_));
    case ValueType::kDouble:
      return std::get<double>(rep_);
    case ValueType::kBool:
      return std::get<bool>(rep_) ? 1.0 : 0.0;
    default:
      return Status::InvalidArgument(
          std::string("AsDouble on non-numeric value of type ") +
          ValueTypeName(type_));
  }
}

Result<int64_t> Value::AsInt64() const {
  switch (type_) {
    case ValueType::kInt64:
    case ValueType::kTimestamp:
      return std::get<int64_t>(rep_);
    case ValueType::kBool:
      return static_cast<int64_t>(std::get<bool>(rep_));
    default:
      return Status::InvalidArgument(
          std::string("AsInt64 on non-integral value of type ") +
          ValueTypeName(type_));
  }
}

bool Value::TryCompare(const Value& other, int* out) const {
  DCheckConsistent();
  other.DCheckConsistent();
  // NULL sorts before everything; two NULLs are equal.
  if (is_null() || other.is_null()) {
    if (is_null() && other.is_null()) {
      *out = 0;
    } else {
      *out = is_null() ? -1 : 1;
    }
    return true;
  }
  if (is_numeric() && other.is_numeric()) {
    // Compare int64/timestamp pairs exactly; mix with double via
    // widening (fine for the magnitudes streams carry).
    if (type_ != ValueType::kDouble && other.type_ != ValueType::kDouble) {
      int64_t a = std::get<int64_t>(rep_);
      int64_t b = std::get<int64_t>(other.rep_);
      *out = a < b ? -1 : (a > b ? 1 : 0);
      return true;
    }
    double a = type_ == ValueType::kDouble
                   ? std::get<double>(rep_)
                   : static_cast<double>(std::get<int64_t>(rep_));
    double b = other.type_ == ValueType::kDouble
                   ? std::get<double>(other.rep_)
                   : static_cast<double>(std::get<int64_t>(other.rep_));
    *out = a < b ? -1 : (a > b ? 1 : 0);
    return true;
  }
  if (type_ == ValueType::kString && other.type_ == ValueType::kString) {
    int c = string_view().compare(other.string_view());
    *out = c < 0 ? -1 : (c > 0 ? 1 : 0);
    return true;
  }
  if (type_ == ValueType::kBool && other.type_ == ValueType::kBool) {
    *out = static_cast<int>(bool_value()) - static_cast<int>(other.bool_value());
    return true;
  }
  return false;
}

Result<int> Value::Compare(const Value& other) const {
  int c;
  if (TryCompare(other, &c)) return c;
  return Status::InvalidArgument(
      StringPrintf("incomparable value types %s vs %s",
                   ValueTypeName(type_), ValueTypeName(other.type_)));
}

bool Value::EqualsSlow(const Value& other) const {
  int c;
  return TryCompare(other, &c) && c == 0;
}

size_t Value::HashSlow() const {
  DCheckConsistent();
  // Numeric canonicalization rule, chosen to be ==-compatible with
  // TryCompare's widening: magnitudes under 2^53 (where int64 and
  // double agree exactly) hash in the int64 domain; everything else
  // hashes via its double image, because that is the precision in
  // which mixed int64/double equality is decided.
  switch (type_) {
    case ValueType::kNull:
      return 0x9ae16a3b2f90404fULL;
    case ValueType::kBool:
      return std::get<bool>(rep_) ? 0x1234567 : 0x7654321;
    case ValueType::kInt64:
    case ValueType::kTimestamp: {
      int64_t v = std::get<int64_t>(rep_);
      if (v > -kDoubleExactBound && v < kDoubleExactBound) {
        return std::hash<int64_t>{}(v);
      }
      return std::hash<double>{}(static_cast<double>(v));
    }
    case ValueType::kDouble: {
      double d = std::get<double>(rep_);
      if (d > -static_cast<double>(kDoubleExactBound) &&
          d < static_cast<double>(kDoubleExactBound)) {
        int64_t i = static_cast<int64_t>(d);
        if (static_cast<double>(i) == d) {
          return std::hash<int64_t>{}(i);
        }
      }
      return std::hash<double>{}(d);
    }
    case ValueType::kString:
      // Owned and borrowed strings with equal bytes must hash alike.
      return std::hash<std::string_view>{}(string_view());
  }
  return 0;
}

std::string Value::ToString() const {
  switch (type_) {
    case ValueType::kNull:
      return "null";
    case ValueType::kBool:
      return std::get<bool>(rep_) ? "true" : "false";
    case ValueType::kInt64:
      return std::to_string(std::get<int64_t>(rep_));
    case ValueType::kDouble:
      return FormatDouble(std::get<double>(rep_));
    case ValueType::kString:
      return "'" + std::string(string_view()) + "'";
    case ValueType::kTimestamp:
      return "t:" + std::to_string(std::get<int64_t>(rep_));
  }
  return "?";
}

}  // namespace nstream
