// Value: a dynamically-typed scalar cell. Streams in the paper carry
// relational tuples over a small scalar vocabulary (ids, timestamps,
// speeds, locations); Value covers exactly that vocabulary plus NULL,
// which Experiment 1's dirty sensor readings require.

#ifndef NSTREAM_TYPES_VALUE_H_
#define NSTREAM_TYPES_VALUE_H_

#include <cassert>
#include <cstdint>
#include <functional>
#include <string>
#include <variant>

#include "common/clock.h"
#include "common/status.h"

namespace nstream {

/// Scalar type tags. kTimestamp is int64 milliseconds of application
/// time; it is kept distinct from kInt64 so punctuation schemes can
/// recognise delimited (progressing) attributes.
enum class ValueType : uint8_t {
  kNull = 0,
  kBool,
  kInt64,
  kDouble,
  kString,
  kTimestamp,
};

/// Name of a ValueType ("int64", "timestamp", ...).
const char* ValueTypeName(ValueType t);

/// Dynamically typed scalar. Total ordering: NULL sorts first; numeric
/// types (int64/double/timestamp) compare by numeric value across type
/// boundaries; strings compare lexicographically and only with strings.
class Value {
 public:
  Value() : type_(ValueType::kNull) {}

  static Value Null() { return Value(); }
  static Value Bool(bool v) {
    Value x;
    x.type_ = ValueType::kBool;
    x.rep_ = v;
    x.DCheckConsistent();
    return x;
  }
  static Value Int64(int64_t v) {
    Value x;
    x.type_ = ValueType::kInt64;
    x.rep_ = v;
    x.DCheckConsistent();
    return x;
  }
  static Value Double(double v) {
    Value x;
    x.type_ = ValueType::kDouble;
    x.rep_ = v;
    x.DCheckConsistent();
    return x;
  }
  static Value String(std::string v) {
    Value x;
    x.type_ = ValueType::kString;
    x.rep_ = std::move(v);
    x.DCheckConsistent();
    return x;
  }
  static Value Timestamp(TimeMs v) {
    Value x;
    x.type_ = ValueType::kTimestamp;
    x.rep_ = v;
    x.DCheckConsistent();
    return x;
  }

  ValueType type() const { return type_; }
  bool is_null() const { return type_ == ValueType::kNull; }
  bool is_numeric() const {
    return type_ == ValueType::kInt64 || type_ == ValueType::kDouble ||
           type_ == ValueType::kTimestamp;
  }

  // Accessors assume the type matches (checked in debug builds).
  bool bool_value() const { return std::get<bool>(rep_); }
  int64_t int64_value() const { return std::get<int64_t>(rep_); }
  double double_value() const { return std::get<double>(rep_); }
  const std::string& string_value() const {
    return std::get<std::string>(rep_);
  }
  TimeMs timestamp_value() const { return std::get<int64_t>(rep_); }

  /// Numeric view: int64/timestamp widened to double. Error on
  /// non-numeric types.
  Result<double> AsDouble() const;

  /// Integer view. Error on non-integral types.
  Result<int64_t> AsInt64() const;

  /// Three-way comparison per the total ordering above. Returns an
  /// error for incomparable pairs (e.g. string vs int64).
  Result<int> Compare(const Value& other) const;

  /// Allocation-free comparison for hot paths (pattern matching, join
  /// probes): writes -1/0/1 into `*out` and returns true, or returns
  /// false for incomparable pairs. Same ordering as Compare.
  bool TryCompare(const Value& other, int* out) const;

  /// Equality per the same ordering; incomparable pairs are unequal.
  /// Int64/timestamp pairs (the dominant join-key shape) are compared
  /// inline; everything else takes the out-of-line path.
  bool operator==(const Value& other) const {
    if (rep_.index() == 2 && other.rep_.index() == 2) {
      return std::get<int64_t>(rep_) == std::get<int64_t>(other.rep_);
    }
    return EqualsSlow(other);
  }
  bool operator!=(const Value& other) const { return !(*this == other); }

  /// Hash compatible with operator== (numerically equal int64/double
  /// values hash identically, including the >2^53 region where mixed
  /// int64/double equality is decided in double precision). The
  /// common small-int64/timestamp case is inline for the join-key
  /// path.
  size_t Hash() const {
    if (rep_.index() == 2) {
      int64_t v = std::get<int64_t>(rep_);
      if (v > -kDoubleExactBound && v < kDoubleExactBound) {
        return std::hash<int64_t>{}(v);
      }
    }
    return HashSlow();
  }

  /// Debug/display rendering ("42", "3.500", "'abc'", "null",
  /// "t:120000").
  std::string ToString() const;

  /// 2^53: int64 magnitudes below this are exactly representable as
  /// double, so int64-domain and double-domain equality agree and the
  /// hash can canonicalize on int64. At or above it, mixed
  /// int64/double equality is decided in (lossy) double precision and
  /// the hash must canonicalize on the double image instead.
  static constexpr int64_t kDoubleExactBound = int64_t{1} << 53;

 private:
  bool EqualsSlow(const Value& other) const;
  size_t HashSlow() const;

  /// The tag is kept alongside the variant because it carries more
  /// information than the representation alone (int64 vs timestamp
  /// share an int64_t rep). This checks the two never drift apart.
  bool TagMatchesRep() const {
    switch (type_) {
      case ValueType::kNull:
        return rep_.index() == 0;
      case ValueType::kBool:
        return rep_.index() == 1;
      case ValueType::kInt64:
      case ValueType::kTimestamp:
        return rep_.index() == 2;
      case ValueType::kDouble:
        return rep_.index() == 3;
      case ValueType::kString:
        return rep_.index() == 4;
    }
    return false;
  }
  void DCheckConsistent() const { assert(TagMatchesRep()); }

  ValueType type_;
  std::variant<std::monostate, bool, int64_t, double, std::string> rep_;
};

}  // namespace nstream

#endif  // NSTREAM_TYPES_VALUE_H_
