// Value: a dynamically-typed scalar cell. Streams in the paper carry
// relational tuples over a small scalar vocabulary (ids, timestamps,
// speeds, locations); Value covers exactly that vocabulary plus NULL,
// which Experiment 1's dirty sensor readings require.

#ifndef NSTREAM_TYPES_VALUE_H_
#define NSTREAM_TYPES_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>

#include "common/clock.h"
#include "common/status.h"

namespace nstream {

/// Scalar type tags. kTimestamp is int64 milliseconds of application
/// time; it is kept distinct from kInt64 so punctuation schemes can
/// recognise delimited (progressing) attributes.
enum class ValueType : uint8_t {
  kNull = 0,
  kBool,
  kInt64,
  kDouble,
  kString,
  kTimestamp,
};

/// Name of a ValueType ("int64", "timestamp", ...).
const char* ValueTypeName(ValueType t);

/// Dynamically typed scalar. Total ordering: NULL sorts first; numeric
/// types (int64/double/timestamp) compare by numeric value across type
/// boundaries; strings compare lexicographically and only with strings.
class Value {
 public:
  Value() : type_(ValueType::kNull) {}

  static Value Null() { return Value(); }
  static Value Bool(bool v) {
    Value x;
    x.type_ = ValueType::kBool;
    x.rep_ = v;
    return x;
  }
  static Value Int64(int64_t v) {
    Value x;
    x.type_ = ValueType::kInt64;
    x.rep_ = v;
    return x;
  }
  static Value Double(double v) {
    Value x;
    x.type_ = ValueType::kDouble;
    x.rep_ = v;
    return x;
  }
  static Value String(std::string v) {
    Value x;
    x.type_ = ValueType::kString;
    x.rep_ = std::move(v);
    return x;
  }
  static Value Timestamp(TimeMs v) {
    Value x;
    x.type_ = ValueType::kTimestamp;
    x.rep_ = v;
    return x;
  }

  ValueType type() const { return type_; }
  bool is_null() const { return type_ == ValueType::kNull; }
  bool is_numeric() const {
    return type_ == ValueType::kInt64 || type_ == ValueType::kDouble ||
           type_ == ValueType::kTimestamp;
  }

  // Accessors assume the type matches (checked in debug builds).
  bool bool_value() const { return std::get<bool>(rep_); }
  int64_t int64_value() const { return std::get<int64_t>(rep_); }
  double double_value() const { return std::get<double>(rep_); }
  const std::string& string_value() const {
    return std::get<std::string>(rep_);
  }
  TimeMs timestamp_value() const { return std::get<int64_t>(rep_); }

  /// Numeric view: int64/timestamp widened to double. Error on
  /// non-numeric types.
  Result<double> AsDouble() const;

  /// Integer view. Error on non-integral types.
  Result<int64_t> AsInt64() const;

  /// Three-way comparison per the total ordering above. Returns an
  /// error for incomparable pairs (e.g. string vs int64).
  Result<int> Compare(const Value& other) const;

  /// Equality per the same ordering; incomparable pairs are unequal.
  bool operator==(const Value& other) const;
  bool operator!=(const Value& other) const { return !(*this == other); }

  /// Hash compatible with operator== (numerically equal int64/double
  /// values hash identically).
  size_t Hash() const;

  /// Debug/display rendering ("42", "3.500", "'abc'", "null",
  /// "t:120000").
  std::string ToString() const;

 private:
  ValueType type_;
  std::variant<std::monostate, bool, int64_t, double, std::string> rep_;
};

}  // namespace nstream

#endif  // NSTREAM_TYPES_VALUE_H_
