// Value: a dynamically-typed scalar cell. Streams in the paper carry
// relational tuples over a small scalar vocabulary (ids, timestamps,
// speeds, locations); Value covers exactly that vocabulary plus NULL,
// which Experiment 1's dirty sensor readings require.
//
// Representation: a FLAT 16-byte tagged union — one 8-byte payload
// (bool / int64 / double / string bytes, each read through the union
// member it was stored through, so the punning is UB-clean), a 32-bit
// string length, three spare bytes, and a one-byte tag at offset 15.
// The tag byte carries the ValueType in bits 0-2 plus the string
// representation: bit 3 marks heap-OWNED bytes, and bit 7 marks an
// INLINE string whose LENGTH lives in bits 3-6 — spending tag bits on
// the length frees the 32-bit len_ field (and the spare bytes) to
// store string bytes, so inline strings cover the first 15 bytes of
// the object instead of only the 8-byte payload:
//
//   * kString                (no bits)  — BORROWED: the payload
//     pointer references bytes living in a TupleArena (page-owned
//     tuple memory); destruction is a no-op, the page frees the bytes
//     wholesale.
//   * kInlineFlag | len<<3 | kString — INLINE: up to 15 bytes stored
//     directly in the value (payload + len_ storage + spare bytes;
//     the length is in the tag). Self-contained AND trivially
//     destructible, so it is legal in both owned and arena-backed
//     tuples and copies as a plain field copy.
//   * kString | kOwnedBit    — OWNED: the payload pointer is a heap
//     buffer this value frees on destruction (the self-contained
//     representation for strings longer than 15 bytes).
//
// Borrowed and inline strings are what make arena-backed tuples
// trivially destructible. Copying a Value is a 16-byte field copy
// plus one branch on the tag; a borrowed or heap-owned string
// additionally clones its bytes into a self-contained representation
// (inline when they fit, heap otherwise), so a Value that escapes its
// page through a plain copy can never dangle. Only moves preserve a
// borrow, and those stay on arena-aware paths (Tuple append, rehome,
// promote).
//
// The previous representation — std::variant<monostate, bool, int64,
// double, std::string, StringRef> + tag, 48 bytes — paid a variant
// dispatch per copied value; the Table 2 join's result construction
// copies four values per output tuple and profiled dominated by those
// dispatches once the arena model removed allocation. The flat layout
// kills the dispatch and shrinks tuple spans 3x. bench_value_dispatch
// carries the A/B against a frozen variant reference.

#ifndef NSTREAM_TYPES_VALUE_H_
#define NSTREAM_TYPES_VALUE_H_

#include <cassert>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <new>
#include <string>
#include <string_view>
#include <type_traits>

#include "common/clock.h"
#include "common/status.h"
#include "types/tuple_arena.h"

namespace nstream {

/// Scalar type tags. kTimestamp is int64 milliseconds of application
/// time; it is kept distinct from kInt64 so punctuation schemes can
/// recognise delimited (progressing) attributes. The numbering is
/// load-bearing for the flat Value's one-compare type tests: the two
/// int64-imaged types differ only in bit 0, and the numeric types
/// (int64/timestamp/double) are contiguous.
enum class ValueType : uint8_t {
  kNull = 0,
  kBool = 1,
  kInt64 = 2,
  kTimestamp = 3,
  kDouble = 4,
  kString = 5,
};

/// Name of a ValueType ("int64", "timestamp", ...).
const char* ValueTypeName(ValueType t);

/// Dynamically typed scalar. Total ordering: NULL sorts first; numeric
/// types (int64/double/timestamp) compare by numeric value across type
/// boundaries; strings compare lexicographically and only with strings.
class Value {
 public:
  Value() = default;

  // Copies are a flat field copy plus a branch on the tag; a borrowed
  // or heap-owned string additionally clones its bytes into a
  // self-contained representation, so copied values are always safe
  // to outlive their source arena. Moves preserve the representation
  // (and therefore the borrow) and leave the source NULL.
  Value(const Value& o)
      : payload_(o.payload_), len_(o.len_), tag_(o.tag_) {
    extra_[0] = o.extra_[0];
    extra_[1] = o.extra_[1];
    extra_[2] = o.extra_[2];
    if (NeedsCloneOnCopy()) CloneStringBytes();
  }
  Value& operator=(const Value& o) {
    if (this != &o) {
      // Copy-and-move: `o` may borrow bytes inside our own storage
      // (a substring of our heap buffer, or even of our inline
      // payload), so the clone must complete before our fields are
      // touched.
      Value tmp(o);
      *this = std::move(tmp);
    }
    return *this;
  }
  Value(Value&& o) noexcept
      : payload_(o.payload_), len_(o.len_), tag_(o.tag_) {
    extra_[0] = o.extra_[0];
    extra_[1] = o.extra_[1];
    extra_[2] = o.extra_[2];
    o.ForgetPayload();
  }
  Value& operator=(Value&& o) noexcept {
    if (this != &o) {
      ::operator delete(const_cast<char*>(owned_ptr_or_null()));
      payload_ = o.payload_;
      len_ = o.len_;
      extra_[0] = o.extra_[0];
      extra_[1] = o.extra_[1];
      extra_[2] = o.extra_[2];
      tag_ = o.tag_;
      o.ForgetPayload();
    }
    return *this;
  }
  ~Value() {
    if (is_owned_rep()) {
      ::operator delete(const_cast<char*>(payload_.str));
    }
  }

  static Value Null() { return Value(); }
  static Value Bool(bool v) {
    Value x;
    x.tag_ = kTagBool;
    x.payload_.b = v;
    return x;
  }
  static Value Int64(int64_t v) {
    Value x;
    x.tag_ = kTagInt64;
    x.payload_.i = v;
    return x;
  }
  static Value Double(double v) {
    Value x;
    x.tag_ = kTagDouble;
    x.payload_.d = v;
    return x;
  }
  /// Self-contained string (by view — the flat rep always clones the
  /// bytes into its own representation, so there is no buffer to
  /// adopt and taking a std::string would only materialize a dead
  /// intermediate).
  static Value String(std::string_view v) { return OwnedString(v); }
  /// Self-contained string: INLINE when the bytes fit the 15-byte
  /// in-object store, heap-OWNED otherwise. Never references the
  /// caller's storage.
  static Value OwnedString(std::string_view s) {
    Value x;
    if (s.size() <= kInlineCap) {
      if (!s.empty()) std::memcpy(x.inline_data(), s.data(), s.size());
      x.tag_ = InlineTag(s.size());
    } else {
      x.len_ = CheckedLen(s.size());
      x.tag_ = kTagString;
      x.payload_.str = s.data();
      x.CloneStringBytes();
    }
    return x;
  }
  /// Borrow externally-owned bytes (a TupleArena's, in practice). The
  /// caller guarantees the bytes outlive every move of this value.
  static Value BorrowedString(std::string_view s) {
    Value x;
    x.tag_ = kTagString;
    x.payload_.str = s.data();
    x.len_ = CheckedLen(s.size());
    return x;
  }
  /// String with page-granular lifetime: INLINE when it fits (no
  /// arena bytes needed at all), otherwise borrowed from `arena` —
  /// or heap-owned when `arena` is null, the fallback path.
  static Value StringIn(TupleArena* arena, std::string_view s) {
    if (s.size() <= kInlineCap || arena == nullptr) {
      return OwnedString(s);
    }
    return BorrowedString(arena->CopyString(s));
  }
  static Value Timestamp(TimeMs v) {
    Value x;
    x.tag_ = kTagTimestamp;
    x.payload_.i = v;
    return x;
  }
  /// Field copy WITHOUT byte cloning — an alias of `v`, not a
  /// self-contained copy. Legal only for trivially destructible
  /// representations (asserted): a borrowed-string alias shares the
  /// source's arena bytes and must not outlive that arena. The
  /// columnar row-gather paths use this to re-reference page-resident
  /// values at field-copy cost.
  static Value Alias(const Value& v) {
    assert(v.is_trivially_destructible_rep());
    Value x;
    x.payload_ = v.payload_;
    x.len_ = v.len_;
    x.extra_[0] = v.extra_[0];
    x.extra_[1] = v.extra_[1];
    x.extra_[2] = v.extra_[2];
    x.tag_ = v.tag_;
    return x;
  }

  ValueType type() const {
    return static_cast<ValueType>(tag_ & kTypeMask);
  }
  bool is_null() const { return tag_ == 0; }
  bool is_numeric() const {
    // int64/timestamp/double are contiguous tags [2, 4]; string
    // modifier bits push the tag far outside the window.
    return static_cast<uint8_t>(tag_ - kTagInt64) <= 2;
  }
  bool is_string() const { return (tag_ & kTypeMask) == kTagString; }
  /// True when the 8-byte payload is an int64 image (kInt64 or
  /// kTimestamp — tags 2 and 3, one masked compare). Public for typed
  /// fast paths (compiled patterns, join-key hashing) that dispatch
  /// once and read the payload raw.
  bool is_int64_rep() const { return (tag_ & 0xFE) == kTagInt64; }
  /// True for a kString value whose bytes are borrowed (arena-backed).
  bool is_borrowed_string() const { return tag_ == kTagString; }
  /// True for a kString value whose bytes live inside the value (only
  /// strings ever set the inline flag, so the bit test suffices).
  bool is_inline_string() const {
    return (tag_ & kInlineFlag) != 0;
  }
  /// True when destroying this value releases no resources — the
  /// invariant every arena-resident value must satisfy (the arena is
  /// freed wholesale, destructors never run).
  bool is_trivially_destructible_rep() const { return !is_owned_rep(); }

  // Accessors assume the type matches (checked in debug builds).
  bool bool_value() const {
    assert(type() == ValueType::kBool);
    return payload_.b;
  }
  int64_t int64_value() const {
    assert(is_int64_rep());
    return payload_.i;
  }
  double double_value() const {
    assert(type() == ValueType::kDouble);
    return payload_.d;
  }
  /// Raw payload reads for callers that already dispatched on the tag
  /// (CompiledPattern's typed comparison plans). No debug type check:
  /// the caller's switch IS the check.
  int64_t unchecked_int64() const { return payload_.i; }
  double unchecked_double() const { return payload_.d; }
  /// Owned-string materialization (by value — the flat representation
  /// holds raw bytes, not a std::string). Prefer string_view().
  std::string string_value() const { return std::string(string_view()); }
  /// View of the string bytes: borrowed, inline, or heap-owned. An
  /// INLINE view points into this Value — it dies with the value (or
  /// its move), unlike borrowed/owned views which track the bytes.
  std::string_view string_view() const {
    assert(is_string());
    if (tag_ & kInlineFlag) {
      return std::string_view(inline_data(), inline_len());
    }
    return std::string_view(payload_.str, len_);
  }
  TimeMs timestamp_value() const {
    assert(is_int64_rep());
    return payload_.i;
  }

  /// Numeric view: int64/timestamp widened to double. Error on
  /// non-numeric types.
  Result<double> AsDouble() const;

  /// Integer view. Error on non-integral types.
  Result<int64_t> AsInt64() const;

  /// Three-way comparison per the total ordering above. Returns an
  /// error for incomparable pairs (e.g. string vs int64).
  Result<int> Compare(const Value& other) const;

  /// Allocation-free comparison for hot paths (pattern matching, join
  /// probes): writes -1/0/1 into `*out` and returns true, or returns
  /// false for incomparable pairs. Same ordering as Compare. Fully
  /// inline: this runs per guarded tuple and per probe collision.
  bool TryCompare(const Value& other, int* out) const {
    // Both int64/timestamp — the join-key / punctuation shape. One
    // fused tag test: tags 2 and 3 differ only in bit 0.
    if ((((tag_ ^ kTagInt64) | (other.tag_ ^ kTagInt64)) & 0xFE) == 0) {
      int64_t a = payload_.i;
      int64_t b = other.payload_.i;
      *out = a < b ? -1 : (a > b ? 1 : 0);
      return true;
    }
    // NULL sorts before everything; two NULLs are equal.
    if (is_null() || other.is_null()) {
      if (is_null() && other.is_null()) {
        *out = 0;
      } else {
        *out = is_null() ? -1 : 1;
      }
      return true;
    }
    if (is_numeric() && other.is_numeric()) {
      // At least one side is a double: widen (fine for the
      // magnitudes streams carry).
      double a = tag_ == kTagDouble ? payload_.d
                                    : static_cast<double>(payload_.i);
      double b = other.tag_ == kTagDouble
                     ? other.payload_.d
                     : static_cast<double>(other.payload_.i);
      *out = a < b ? -1 : (a > b ? 1 : 0);
      return true;
    }
    if (is_string() && other.is_string()) {
      int c = string_view().compare(other.string_view());
      *out = c < 0 ? -1 : (c > 0 ? 1 : 0);
      return true;
    }
    if (tag_ == kTagBool && other.tag_ == kTagBool) {
      *out = static_cast<int>(payload_.b) -
             static_cast<int>(other.payload_.b);
      return true;
    }
    return false;
  }

  /// Equality per the same ordering; incomparable pairs are unequal.
  /// Int64/timestamp pairs (the dominant join-key shape) are compared
  /// inline; everything else takes the out-of-line path.
  bool operator==(const Value& other) const {
    if ((((tag_ ^ kTagInt64) | (other.tag_ ^ kTagInt64)) & 0xFE) == 0) {
      return payload_.i == other.payload_.i;
    }
    return EqualsSlow(other);
  }
  bool operator!=(const Value& other) const { return !(*this == other); }

  /// Hash compatible with operator== (numerically equal int64/double
  /// values hash identically, including the >2^53 region where mixed
  /// int64/double equality is decided in double precision; borrowed,
  /// inline, and owned strings with equal bytes hash identically).
  /// The common small-int64/timestamp case is inline for the join-key
  /// path.
  size_t Hash() const {
    if (is_int64_rep()) return HashInt64Domain(payload_.i);
    // Doubles are NOT rare (a quarter of a typical measurement
    // stream): dispatch them here rather than through HashSlow's
    // full switch.
    if (tag_ == kTagDouble) return HashDoubleDomain(payload_.d);
    return HashSlow();
  }

  /// Debug/display rendering ("42", "3.500", "'abc'", "null",
  /// "t:120000").
  std::string ToString() const;

  /// 2^53: int64 magnitudes below this are exactly representable as
  /// double, so int64-domain and double-domain equality agree and the
  /// hash can canonicalize on int64. At or above it, mixed
  /// int64/double equality is decided in (lossy) double precision and
  /// the hash must canonicalize on the double image instead.
  static constexpr int64_t kDoubleExactBound = int64_t{1} << 53;

  /// Longest string stored inline in the value (payload + len_
  /// storage + spare bytes; everything before the tag at offset 15).
  static constexpr size_t kInlineCap = 15;

 private:
  // Tag byte layout: ValueType in bits 0-2; kOwnedBit (bit 3) marks a
  // heap-owned string; kInlineFlag (bit 7) marks an inline string
  // whose length occupies bits 3-6 (0..15 — an inline tag therefore
  // may have bit 3 set, so "owned" is owned-bit AND NOT inline).
  // kNull is 0, so a zero tag byte IS the null value.
  static constexpr uint8_t kTypeMask = 0x07;
  static constexpr uint8_t kOwnedBit = 0x08;
  static constexpr uint8_t kInlineFlag = 0x80;
  static constexpr int kInlineLenShift = 3;
  static constexpr uint8_t kTagBool =
      static_cast<uint8_t>(ValueType::kBool);
  static constexpr uint8_t kTagInt64 =
      static_cast<uint8_t>(ValueType::kInt64);
  static constexpr uint8_t kTagTimestamp =
      static_cast<uint8_t>(ValueType::kTimestamp);
  static constexpr uint8_t kTagDouble =
      static_cast<uint8_t>(ValueType::kDouble);
  static constexpr uint8_t kTagString =
      static_cast<uint8_t>(ValueType::kString);

  // The 8-byte payload. Each member is read only through the member
  // it was stored through (the tag says which), so access is always
  // to the active member — no type punning, UB-clean by construction.
  union Payload {
    bool b;
    int64_t i;  // kInt64 and kTimestamp
    double d;
    const char* str;  // borrowed/owned string bytes (see tag)
    char buf[8];      // first 8 inline string bytes
  };

  static constexpr uint8_t InlineTag(size_t n) {
    return static_cast<uint8_t>(kInlineFlag | (n << kInlineLenShift) |
                                kTagString);
  }
  uint32_t inline_len() const {
    return (tag_ >> kInlineLenShift) & 0x0F;
  }
  // Inline string bytes span payload_, len_'s storage, and extra_ —
  // the 15 contiguous bytes before the tag (offsets static_asserted in
  // value.cc). Accessed only through char pointers to the object
  // representation, which aliases anything.
  char* inline_data() { return reinterpret_cast<char*>(&payload_); }
  const char* inline_data() const {
    return reinterpret_cast<const char*>(&payload_);
  }
  /// Owned = owned bit set AND not inline (an inline tag may carry
  /// bit 3 as part of its length nibble).
  bool is_owned_rep() const {
    return (tag_ & (kOwnedBit | kInlineFlag)) == kOwnedBit;
  }

  static uint32_t CheckedLen(size_t n) {
    // Hard check, release builds included: a ≥4 GiB string cell is far
    // beyond any stream workload, and silently wrapping len_ would
    // corrupt the value (equal-to-empty, wrong hash) instead of
    // failing.
    if (n > UINT32_MAX) std::abort();
    return static_cast<uint32_t>(n);
  }

  /// A copy must clone bytes exactly when the source is a borrowed or
  /// heap-owned string; inline strings (and every non-string) copy as
  /// plain fields. Masking out the owned bit and the inline flag
  /// folds borrowed (0x05) and owned (0x0D) onto kTagString with one
  /// compare, while every inline tag keeps bit 7 and fails it.
  bool NeedsCloneOnCopy() const {
    return (tag_ & static_cast<uint8_t>(~kOwnedBit)) == kTagString;
  }
  /// Replace the (possibly foreign) string payload with a
  /// self-contained copy of its bytes: inline when they fit, heap
  /// otherwise. Only called on borrowed/owned reps, whose length is
  /// in len_ (saved before the inline bytes overwrite its storage).
  void CloneStringBytes() {
    const char* src = payload_.str;
    const uint32_t n = len_;
    if (n <= kInlineCap) {
      if (n != 0) std::memcpy(inline_data(), src, n);
      tag_ = InlineTag(n);
      return;
    }
    char* p = static_cast<char*>(::operator new(n));
    std::memcpy(p, src, n);
    payload_.str = p;
    tag_ = kTagString | kOwnedBit;
  }
  const char* owned_ptr_or_null() const {
    return is_owned_rep() ? payload_.str : nullptr;
  }
  /// Reset to NULL without freeing (the payload now belongs to a
  /// move destination).
  void ForgetPayload() {
    payload_.i = 0;
    len_ = 0;
    extra_[0] = extra_[1] = extra_[2] = 0;
    tag_ = 0;
  }

  bool EqualsSlow(const Value& other) const {
    int c;
    return TryCompare(other, &c) && c == 0;
  }

  // The numeric canonicalization rule, ==-compatible with
  // TryCompare's widening and defined ONCE per domain (Hash and
  // HashSlow both route here): magnitudes under 2^53 — where int64
  // and double agree exactly — hash in the int64 domain; everything
  // else hashes via its double image, the precision in which mixed
  // int64/double equality is decided.
  static size_t HashInt64Domain(int64_t v) {
    if (v > -kDoubleExactBound && v < kDoubleExactBound) {
      return std::hash<int64_t>{}(v);
    }
    return std::hash<double>{}(static_cast<double>(v));
  }
  static size_t HashDoubleDomain(double d) {
    if (d > -static_cast<double>(kDoubleExactBound) &&
        d < static_cast<double>(kDoubleExactBound)) {
      int64_t i = static_cast<int64_t>(d);
      if (static_cast<double>(i) == d) {
        return std::hash<int64_t>{}(i);
      }
    }
    return std::hash<double>{}(d);
  }

  /// Hash for everything Hash()'s tag dispatch rejects — null, bool,
  /// strings (numerics are routed before this is reached, but the
  /// cases stay so HashSlow is total over every tag).
  size_t HashSlow() const {
    switch (type()) {
      case ValueType::kNull:
        return 0x9ae16a3b2f90404fULL;
      case ValueType::kBool:
        return payload_.b ? 0x1234567 : 0x7654321;
      case ValueType::kInt64:
      case ValueType::kTimestamp:
        return HashInt64Domain(payload_.i);
      case ValueType::kDouble:
        return HashDoubleDomain(payload_.d);
      case ValueType::kString:
        // Borrowed, inline, and owned strings with equal bytes must
        // hash alike.
        return std::hash<std::string_view>{}(string_view());
    }
    return 0;
  }

  // Order is load-bearing: payload_, len_, extra_ are the 15
  // contiguous bytes an inline string occupies, with the tag last at
  // offset 15 (layout static_asserted in value.cc).
  Payload payload_{.i = 0};
  uint32_t len_ = 0;     // string byte count for borrowed/owned reps
  char extra_[3] = {};   // inline string bytes 12..14
  uint8_t tag_ = 0;      // ValueType | string rep (see above)

  friend struct ValueLayoutAsserts;
};

// The whole point: four of these per Table 2 output tuple must copy as
// a couple of stores, not a variant dispatch.
static_assert(sizeof(Value) <= 16,
              "Value must stay a flat 16-byte tagged union");
static_assert(std::is_nothrow_move_constructible_v<Value> &&
                  std::is_nothrow_move_assignable_v<Value>,
              "Value moves are the currency of the tuple data path");

}  // namespace nstream

#endif  // NSTREAM_TYPES_VALUE_H_
