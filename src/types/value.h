// Value: a dynamically-typed scalar cell. Streams in the paper carry
// relational tuples over a small scalar vocabulary (ids, timestamps,
// speeds, locations); Value covers exactly that vocabulary plus NULL,
// which Experiment 1's dirty sensor readings require.
//
// Strings come in two representations behind the same kString type
// tag: an OWNED std::string, and a BORROWED (pointer, length) view of
// bytes that live in a TupleArena (page-owned tuple memory). Borrowed
// strings are what make arena-backed tuples trivially destructible —
// the page frees their bytes wholesale. Copying a Value always
// promotes a borrowed string to an owned one, so a Value that escapes
// its page through a plain copy can never dangle; only moves preserve
// the borrow, and those stay on arena-aware paths (Tuple append,
// rehome, promote).

#ifndef NSTREAM_TYPES_VALUE_H_
#define NSTREAM_TYPES_VALUE_H_

#include <cassert>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <variant>

#include "common/clock.h"
#include "common/status.h"
#include "types/tuple_arena.h"

namespace nstream {

/// Scalar type tags. kTimestamp is int64 milliseconds of application
/// time; it is kept distinct from kInt64 so punctuation schemes can
/// recognise delimited (progressing) attributes.
enum class ValueType : uint8_t {
  kNull = 0,
  kBool,
  kInt64,
  kDouble,
  kString,
  kTimestamp,
};

/// Name of a ValueType ("int64", "timestamp", ...).
const char* ValueTypeName(ValueType t);

/// Dynamically typed scalar. Total ordering: NULL sorts first; numeric
/// types (int64/double/timestamp) compare by numeric value across type
/// boundaries; strings compare lexicographically and only with strings.
class Value {
 public:
  Value() : type_(ValueType::kNull) {}

  // Copies deep-copy: a borrowed string is promoted to an owned one,
  // so copied values are always safe to outlive their source arena.
  // Moves preserve the representation (and therefore the borrow).
  // The copy constructor initializes rep_ in the member-init list —
  // construction, not default-construct-then-assign, which would pay
  // a second variant dispatch on every copied value (the join's
  // result-construction path copies four values per output tuple).
  Value(const Value& o) : type_(o.type_), rep_(CopyRep(o.rep_)) {}
  Value& operator=(const Value& o) {
    if (this != &o) {
      type_ = o.type_;
      if (o.rep_.index() == kBorrowedIndex) {
        const StringRef& r = std::get<StringRef>(o.rep_);
        rep_.emplace<std::string>(r.data, r.len);
      } else {
        rep_ = o.rep_;
      }
    }
    return *this;
  }
  Value(Value&&) = default;
  Value& operator=(Value&&) = default;
  ~Value() = default;

  static Value Null() { return Value(); }
  static Value Bool(bool v) {
    Value x;
    x.type_ = ValueType::kBool;
    x.rep_ = v;
    x.DCheckConsistent();
    return x;
  }
  static Value Int64(int64_t v) {
    Value x;
    x.type_ = ValueType::kInt64;
    x.rep_ = v;
    x.DCheckConsistent();
    return x;
  }
  static Value Double(double v) {
    Value x;
    x.type_ = ValueType::kDouble;
    x.rep_ = v;
    x.DCheckConsistent();
    return x;
  }
  static Value String(std::string v) {
    Value x;
    x.type_ = ValueType::kString;
    x.rep_ = std::move(v);
    x.DCheckConsistent();
    return x;
  }
  /// Borrow externally-owned bytes (a TupleArena's, in practice). The
  /// caller guarantees the bytes outlive every move of this value.
  static Value BorrowedString(std::string_view s) {
    Value x;
    x.type_ = ValueType::kString;
    x.rep_ = StringRef{s.data(), s.size()};
    x.DCheckConsistent();
    return x;
  }
  /// String whose bytes live in `arena` (borrowed, freed with the
  /// arena's page); owned when `arena` is null — the fallback path.
  static Value StringIn(TupleArena* arena, std::string_view s) {
    if (arena == nullptr) return String(std::string(s));
    return BorrowedString(arena->CopyString(s));
  }
  static Value Timestamp(TimeMs v) {
    Value x;
    x.type_ = ValueType::kTimestamp;
    x.rep_ = v;
    x.DCheckConsistent();
    return x;
  }

  ValueType type() const { return type_; }
  bool is_null() const { return type_ == ValueType::kNull; }
  bool is_numeric() const {
    return type_ == ValueType::kInt64 || type_ == ValueType::kDouble ||
           type_ == ValueType::kTimestamp;
  }
  /// True for a kString value whose bytes are borrowed (arena-backed).
  bool is_borrowed_string() const {
    return rep_.index() == kBorrowedIndex;
  }
  /// True when destroying this value releases no resources — the
  /// invariant every arena-resident value must satisfy (the arena is
  /// freed wholesale, destructors never run).
  bool is_trivially_destructible_rep() const {
    return rep_.index() != kOwnedStringIndex;
  }

  // Accessors assume the type matches (checked in debug builds).
  bool bool_value() const { return std::get<bool>(rep_); }
  int64_t int64_value() const { return std::get<int64_t>(rep_); }
  double double_value() const { return std::get<double>(rep_); }
  /// Owned-string accessor; asserts the representation is owned. Use
  /// string_view() on paths that may see arena-backed values.
  const std::string& string_value() const {
    return std::get<std::string>(rep_);
  }
  /// View of the string bytes, owned or borrowed.
  std::string_view string_view() const {
    if (rep_.index() == kBorrowedIndex) {
      const StringRef& r = std::get<StringRef>(rep_);
      return std::string_view(r.data, r.len);
    }
    return std::get<std::string>(rep_);
  }
  TimeMs timestamp_value() const { return std::get<int64_t>(rep_); }

  /// Numeric view: int64/timestamp widened to double. Error on
  /// non-numeric types.
  Result<double> AsDouble() const;

  /// Integer view. Error on non-integral types.
  Result<int64_t> AsInt64() const;

  /// Three-way comparison per the total ordering above. Returns an
  /// error for incomparable pairs (e.g. string vs int64).
  Result<int> Compare(const Value& other) const;

  /// Allocation-free comparison for hot paths (pattern matching, join
  /// probes): writes -1/0/1 into `*out` and returns true, or returns
  /// false for incomparable pairs. Same ordering as Compare.
  bool TryCompare(const Value& other, int* out) const;

  /// Equality per the same ordering; incomparable pairs are unequal.
  /// Int64/timestamp pairs (the dominant join-key shape) are compared
  /// inline; everything else takes the out-of-line path.
  bool operator==(const Value& other) const {
    if (rep_.index() == 2 && other.rep_.index() == 2) {
      return std::get<int64_t>(rep_) == std::get<int64_t>(other.rep_);
    }
    return EqualsSlow(other);
  }
  bool operator!=(const Value& other) const { return !(*this == other); }

  /// Hash compatible with operator== (numerically equal int64/double
  /// values hash identically, including the >2^53 region where mixed
  /// int64/double equality is decided in double precision; owned and
  /// borrowed strings with equal bytes hash identically). The common
  /// small-int64/timestamp case is inline for the join-key path.
  size_t Hash() const {
    if (rep_.index() == 2) {
      int64_t v = std::get<int64_t>(rep_);
      if (v > -kDoubleExactBound && v < kDoubleExactBound) {
        return std::hash<int64_t>{}(v);
      }
    }
    return HashSlow();
  }

  /// Debug/display rendering ("42", "3.500", "'abc'", "null",
  /// "t:120000").
  std::string ToString() const;

  /// 2^53: int64 magnitudes below this are exactly representable as
  /// double, so int64-domain and double-domain equality agree and the
  /// hash can canonicalize on int64. At or above it, mixed
  /// int64/double equality is decided in (lossy) double precision and
  /// the hash must canonicalize on the double image instead.
  static constexpr int64_t kDoubleExactBound = int64_t{1} << 53;

 private:
  /// Non-owning view of string bytes living in a TupleArena.
  struct StringRef {
    const char* data;
    size_t len;
  };
  static constexpr size_t kOwnedStringIndex = 4;
  static constexpr size_t kBorrowedIndex = 5;

  using Rep = std::variant<std::monostate, bool, int64_t, double,
                           std::string, StringRef>;
  static Rep CopyRep(const Rep& r) {
    if (r.index() == kBorrowedIndex) {
      const StringRef& s = std::get<StringRef>(r);
      return Rep(std::in_place_type<std::string>, s.data, s.len);
    }
    return r;
  }

  bool EqualsSlow(const Value& other) const;
  size_t HashSlow() const;

  /// The tag is kept alongside the variant because it carries more
  /// information than the representation alone (int64 vs timestamp
  /// share an int64_t rep; owned vs borrowed strings share kString).
  /// This checks the two never drift apart.
  bool TagMatchesRep() const {
    switch (type_) {
      case ValueType::kNull:
        return rep_.index() == 0;
      case ValueType::kBool:
        return rep_.index() == 1;
      case ValueType::kInt64:
      case ValueType::kTimestamp:
        return rep_.index() == 2;
      case ValueType::kDouble:
        return rep_.index() == 3;
      case ValueType::kString:
        return rep_.index() == kOwnedStringIndex ||
               rep_.index() == kBorrowedIndex;
    }
    return false;
  }
  void DCheckConsistent() const { assert(TagMatchesRep()); }

  ValueType type_;
  Rep rep_;
};

}  // namespace nstream

#endif  // NSTREAM_TYPES_VALUE_H_
