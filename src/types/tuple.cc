#include "types/tuple.h"

#include "common/string_util.h"

namespace nstream {

size_t Tuple::HashSubset(const std::vector<int>& indices) const {
  size_t h = 0xcbf29ce484222325ULL;
  for (int i : indices) {
    h ^= values_[static_cast<size_t>(i)].Hash();
    h *= 0x100000001b3ULL;
  }
  return h;
}

bool Tuple::EqualsSubset(const Tuple& other, const std::vector<int>& mine,
                         const std::vector<int>& theirs) const {
  if (mine.size() != theirs.size()) return false;
  for (size_t k = 0; k < mine.size(); ++k) {
    if (!(values_[static_cast<size_t>(mine[k])] ==
          other.values_[static_cast<size_t>(theirs[k])])) {
      return false;
    }
  }
  return true;
}

std::string Tuple::ToString() const {
  std::vector<std::string> parts;
  parts.reserve(values_.size());
  for (const Value& v : values_) parts.push_back(v.ToString());
  return "<" + Join(parts, ", ") + ">";
}

}  // namespace nstream
