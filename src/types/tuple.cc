#include "types/tuple.h"

#include "common/string_util.h"

namespace nstream {

std::string Tuple::ToString() const {
  std::vector<std::string> parts;
  parts.reserve(static_cast<size_t>(size()));
  for (int i = 0; i < size(); ++i) parts.push_back(value(i).ToString());
  return "<" + Join(parts, ", ") + ">";
}

}  // namespace nstream
