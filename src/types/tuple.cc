#include "types/tuple.h"

#include "common/string_util.h"

namespace nstream {

std::string Tuple::ToString() const {
  std::vector<std::string> parts;
  parts.reserve(values_.size());
  for (const Value& v : values_) parts.push_back(v.ToString());
  return "<" + Join(parts, ", ") + ">";
}

}  // namespace nstream
