#include "types/schema.h"

#include "common/string_util.h"

namespace nstream {

Result<int> Schema::IndexOf(const std::string& name) const {
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (fields_[i].name == name) return static_cast<int>(i);
  }
  return Status::NotFound("no attribute named '" + name + "' in " +
                          ToString());
}

Result<SchemaPtr> Schema::Project(const std::vector<int>& indices) const {
  std::vector<Field> out;
  out.reserve(indices.size());
  for (int i : indices) {
    if (!HasIndex(i)) {
      return Status::OutOfRange(
          StringPrintf("project index %d out of range for %d-field schema",
                       i, num_fields()));
    }
    out.push_back(fields_[static_cast<size_t>(i)]);
  }
  return Schema::Make(std::move(out));
}

SchemaPtr Schema::Concat(const Schema& other) const {
  std::vector<Field> out = fields_;
  out.insert(out.end(), other.fields_.begin(), other.fields_.end());
  return Schema::Make(std::move(out));
}

std::string Schema::ToString() const {
  std::vector<std::string> parts;
  parts.reserve(fields_.size());
  for (const Field& f : fields_) {
    parts.push_back(f.name + ":" + ValueTypeName(f.type));
  }
  return "(" + Join(parts, ", ") + ")";
}

}  // namespace nstream
