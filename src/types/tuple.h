// Tuple: one stream element's data payload, plus the engine metadata the
// evaluation needs (arrival time for latency accounting, a stable id for
// Figure 5/6-style output-pattern plots).
//
// Values live in a contiguous span with two ownership modes:
//
//   * OWNED  — the span is heap-allocated and destroyed with the tuple
//     (the fallback path; behaves like the old std::vector<Value>).
//   * ARENA  — the span is bump-allocated from a TupleArena owned by
//     the Page the tuple travels in; the tuple's destructor does
//     nothing and the page frees all payloads wholesale. Arena-mode
//     values are kept trivially destructible (string values borrow
//     arena bytes), which is what makes the wholesale free sound.
//
// Lifetime rules: an arena-backed tuple is valid only while its arena
// (its page) lives. Copies always deep-copy into OWNED mode, so
// accidental escapes are safe; moves preserve the arena pointer, so
// any path that moves a tuple out of its page into longer-lived state
// must call Promote() (to owned storage — join tables do this) or
// Rehome() (into the destination page's arena — queue/page staging
// does this).

#ifndef NSTREAM_TYPES_TUPLE_H_
#define NSTREAM_TYPES_TUPLE_H_

#include <cassert>
#include <cstdint>
#include <new>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/clock.h"
#include "types/schema.h"
#include "types/tuple_arena.h"
#include "types/value.h"

namespace nstream {

/// A relational tuple. Values are positional; the schema lives on the
/// stream (operators know their input/output schemas), not on each
/// tuple, keeping tuples small.
class Tuple {
 public:
  Tuple() = default;
  explicit Tuple(std::vector<Value> values) {
    ReserveOwned(values.size());
    for (Value& v : values) {
      new (data_ + size_) Value(std::move(v));
      ++size_;
    }
  }
  /// Arena-backed tuple with `capacity` values reserved from `arena`;
  /// plain owned mode when `arena` is null (the arena-less fallback
  /// every call site may rely on).
  Tuple(TupleArena* arena, size_t capacity) : arena_(arena) {
    if (arena_ != nullptr) {
      data_ = arena_->AllocateSpan<Value>(capacity);
      capacity_ = static_cast<uint32_t>(capacity);
    } else if (capacity > 0) {
      ReserveOwned(capacity);
    }
  }

  ~Tuple() { ReleaseOwned(); }

  // Copies deep-copy into OWNED mode (borrowed strings promote to
  // owned via Value's copy), so a copied tuple never references the
  // source page's arena.
  Tuple(const Tuple& o) : id_(o.id_), arrival_ms_(o.arrival_ms_) {
    if (o.size_ > 0) {
      ReserveOwned(o.size_);
      for (uint32_t i = 0; i < o.size_; ++i) {
        new (data_ + i) Value(o.data_[i]);
      }
      size_ = o.size_;
    }
  }
  Tuple& operator=(const Tuple& o) {
    if (this != &o) {
      Tuple tmp(o);
      *this = std::move(tmp);
    }
    return *this;
  }
  // Moves steal the span. An arena-backed tuple stays arena-backed —
  // the mover is responsible for Promote()/Rehome() when the tuple
  // outlives its page.
  Tuple(Tuple&& o) noexcept
      : data_(o.data_),
        size_(o.size_),
        capacity_(o.capacity_),
        arena_(o.arena_),
        id_(o.id_),
        arrival_ms_(o.arrival_ms_) {
    o.Forget();
  }
  Tuple& operator=(Tuple&& o) noexcept {
    if (this != &o) {
      ReleaseOwned();
      data_ = o.data_;
      size_ = o.size_;
      capacity_ = o.capacity_;
      arena_ = o.arena_;
      id_ = o.id_;
      arrival_ms_ = o.arrival_ms_;
      o.Forget();
    }
    return *this;
  }

  int size() const { return static_cast<int>(size_); }
  const Value& value(int i) const {
    assert(i >= 0 && static_cast<uint32_t>(i) < size_);
    return data_[i];
  }
  /// Mutable access. Do NOT store an owning (non-borrowed) string into
  /// an arena-backed tuple — its destructor never runs and the bytes
  /// would leak; use Value::StringIn(arena(), ...) instead.
  Value& mutable_value(int i) {
    assert(i >= 0 && static_cast<uint32_t>(i) < size_);
    return data_[i];
  }

  void Append(Value&& v) {
    if (size_ == capacity_) Grow();
    if (arena_ != nullptr) {
      // Keep arena-resident values trivially destructible: owned
      // string bytes are re-homed into the arena, and FOREIGN
      // borrowed bytes are re-copied because their source arena may
      // die first. A borrow that already points into this tuple's
      // arena (the Value::StringIn(arena, ...) construction pattern)
      // moves through without a second copy, and INLINE strings are
      // self-contained — they move through like any scalar.
      if (v.type() == ValueType::kString && !v.is_inline_string()) {
        std::string_view sv = v.string_view();
        if (v.is_borrowed_string() && arena_->Owns(sv.data())) {
          new (data_ + size_) Value(std::move(v));
        } else {
          new (data_ + size_) Value(Value::StringIn(arena_, sv));
        }
      } else {
        new (data_ + size_) Value(std::move(v));
      }
    } else {
      // Owned tuples must be self-contained: promote a borrowed
      // string (Value's copy constructor does) instead of moving it.
      if (v.is_borrowed_string()) {
        new (data_ + size_) Value(static_cast<const Value&>(v));
      } else {
        new (data_ + size_) Value(std::move(v));
      }
    }
    ++size_;
  }
  /// Copy-append straight from a source value without an intermediate
  /// promotion: in arena mode string bytes go directly into the arena
  /// (the join's result-construction hot path), and a borrow already
  /// backed by this arena is re-borrowed rather than re-copied.
  void Append(const Value& v) {
    if (size_ == capacity_) Grow();
    if (arena_ != nullptr && v.type() == ValueType::kString &&
        !v.is_inline_string()) {
      std::string_view sv = v.string_view();
      if (v.is_borrowed_string() && arena_->Owns(sv.data())) {
        new (data_ + size_) Value(Value::BorrowedString(sv));
      } else {
        new (data_ + size_) Value(Value::StringIn(arena_, sv));
      }
    } else {
      // Scalars and inline strings copy as flat fields (an inline
      // string is trivially destructible, so it is arena-legal as
      // is); a borrowed string copied into an owned tuple promotes
      // via Value's copy constructor.
      new (data_ + size_) Value(v);
    }
    ++size_;
  }
  /// Arena-mode append of an already-arena-legal value as a raw field
  /// copy (Value::Alias) — no Owns() probe, no byte clone. The caller
  /// guarantees `v` is trivially destructible and that any borrowed
  /// bytes live in (or outlive) this tuple's arena; the columnar
  /// row-gather path satisfies this by construction.
  void AppendAlias(const Value& v) {
    assert(arena_ != nullptr);
    if (size_ == capacity_) Grow();
    new (data_ + size_) Value(Value::Alias(v));
    ++size_;
  }
  void Reserve(size_t n) {
    if (n > capacity_) Regrow(n);
  }

  /// The arena backing this tuple's values, or null in owned mode.
  TupleArena* arena() const { return arena_; }
  bool arena_backed() const { return arena_ != nullptr; }

  /// Arena → owned: deep-copy the values into heap storage this tuple
  /// owns. No-op in owned mode. Required before storing a tuple beyond
  /// its page's lifetime (join tables, window state, collectors).
  void Promote() {
    if (arena_ == nullptr) return;
    Value* old = data_;
    uint32_t n = size_;
    arena_ = nullptr;
    data_ = nullptr;
    size_ = 0;
    capacity_ = 0;
    if (n > 0) {
      ReserveOwned(n);
      for (uint32_t i = 0; i < n; ++i) {
        new (data_ + i) Value(old[i]);  // copy promotes borrowed strings
      }
      size_ = n;
    }
    // `old` lives in the abandoned arena; nothing to free here.
  }

  /// Move this tuple's values into `dst`'s ownership domain: no-op
  /// when already owned or already backed by `dst`; Promote() when
  /// `dst` is null; otherwise bump-copy the span (and string bytes)
  /// into `dst`. Used when a tuple migrates from one page to another
  /// (queue open pages, exchange/select staging pages).
  void Rehome(TupleArena* dst) {
    if (arena_ == nullptr || arena_ == dst) return;
    if (dst == nullptr) {
      Promote();
      return;
    }
    Value* span = dst->AllocateSpan<Value>(size_);
    for (uint32_t i = 0; i < size_; ++i) {
      if (data_[i].is_borrowed_string()) {
        new (span + i) Value(
            Value::BorrowedString(dst->CopyString(data_[i].string_view())));
      } else {
        new (span + i) Value(std::move(data_[i]));
      }
    }
    data_ = span;
    capacity_ = size_;
    arena_ = dst;
  }

  /// Debug invariant behind the wholesale page free: an arena tuple
  /// must reference exactly `page_arena` and hold no owning strings;
  /// an owned tuple must hold no borrowed strings.
  bool ArenaInvariantHolds(const TupleArena* page_arena) const {
    if (arena_ != nullptr && arena_ != page_arena) return false;
    for (uint32_t i = 0; i < size_; ++i) {
      if (arena_ != nullptr && !data_[i].is_trivially_destructible_rep()) {
        return false;
      }
      if (arena_ == nullptr && data_[i].is_borrowed_string()) {
        return false;
      }
    }
    return true;
  }

  /// Engine-assigned monotone id (per source); 0 when unset.
  int64_t id() const { return id_; }
  void set_id(int64_t id) { id_ = id; }

  /// System time at which the tuple entered the engine. Used by PACE and
  /// by the timeliness metrics. -1 when unset.
  TimeMs arrival_ms() const { return arrival_ms_; }
  void set_arrival_ms(TimeMs t) { arrival_ms_ = t; }

  bool operator==(const Tuple& o) const {
    if (size_ != o.size_) return false;
    for (uint32_t i = 0; i < size_; ++i) {
      if (!(data_[i] == o.data_[i])) return false;
    }
    return true;
  }
  bool operator!=(const Tuple& o) const { return !(*this == o); }

  /// Hash over a subset of attribute positions (join keys, group
  /// keys). Inline: runs once per probe/insert on the join hot path.
  size_t HashSubset(const std::vector<int>& indices) const {
    size_t h = 0xcbf29ce484222325ULL;
    for (int i : indices) {
      h ^= data_[i].Hash();
      h *= 0x100000001b3ULL;
    }
    return h;
  }

  /// Equality restricted to a subset of attribute positions. Inline:
  /// this is the collision check behind every hashed join probe.
  bool EqualsSubset(const Tuple& other, const std::vector<int>& mine,
                    const std::vector<int>& theirs) const {
    if (mine.size() != theirs.size()) return false;
    for (size_t k = 0; k < mine.size(); ++k) {
      if (!(data_[mine[k]] == other.data_[theirs[k]])) {
        return false;
      }
    }
    return true;
  }

  /// "<v0, v1, ...>" rendering.
  std::string ToString() const;

 private:
  void ReserveOwned(size_t n) {
    data_ = static_cast<Value*>(::operator new(n * sizeof(Value)));
    capacity_ = static_cast<uint32_t>(n);
  }
  void ReleaseOwned() {
    if (arena_ == nullptr && data_ != nullptr) {
      for (uint32_t i = 0; i < size_; ++i) data_[i].~Value();
      ::operator delete(data_);
    }
  }
  void Forget() {
    data_ = nullptr;
    size_ = 0;
    capacity_ = 0;
    arena_ = nullptr;
  }
  void Grow() { Regrow(capacity_ == 0 ? 4 : size_t{capacity_} * 2); }
  void Regrow(size_t n) {
    if (arena_ != nullptr) {
      Value* span = arena_->AllocateSpan<Value>(n);
      // Arena values are trivially destructible (no owned strings), so
      // move-construct into the new span and abandon the old one.
      for (uint32_t i = 0; i < size_; ++i) {
        new (span + i) Value(std::move(data_[i]));
      }
      data_ = span;
      capacity_ = static_cast<uint32_t>(n);
      return;
    }
    Value* old = data_;
    uint32_t old_n = size_;
    ReserveOwned(n);
    for (uint32_t i = 0; i < old_n; ++i) {
      new (data_ + i) Value(std::move(old[i]));
      old[i].~Value();
    }
    ::operator delete(old);
  }

  Value* data_ = nullptr;
  uint32_t size_ = 0;
  uint32_t capacity_ = 0;
  TupleArena* arena_ = nullptr;
  int64_t id_ = 0;
  TimeMs arrival_ms_ = -1;
};

static_assert(std::is_nothrow_move_constructible_v<Tuple>,
              "Tuple moves are the currency of the page data path");

/// Convenience builder used heavily in tests and workload generators:
/// TupleBuilder().I64(3).D(51.2).Ts(9000).Build().
class TupleBuilder {
 public:
  TupleBuilder& Null() {
    values_.push_back(Value::Null());
    return *this;
  }
  TupleBuilder& B(bool v) {
    values_.push_back(Value::Bool(v));
    return *this;
  }
  TupleBuilder& I64(int64_t v) {
    values_.push_back(Value::Int64(v));
    return *this;
  }
  TupleBuilder& D(double v) {
    values_.push_back(Value::Double(v));
    return *this;
  }
  TupleBuilder& S(std::string v) {
    values_.push_back(Value::String(std::move(v)));
    return *this;
  }
  TupleBuilder& Ts(TimeMs v) {
    values_.push_back(Value::Timestamp(v));
    return *this;
  }
  TupleBuilder& V(Value v) {
    values_.push_back(std::move(v));
    return *this;
  }

  Tuple Build() { return Tuple(std::move(values_)); }

 private:
  std::vector<Value> values_;
};

}  // namespace nstream

#endif  // NSTREAM_TYPES_TUPLE_H_
