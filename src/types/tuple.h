// Tuple: one stream element's data payload, plus the engine metadata the
// evaluation needs (arrival time for latency accounting, a stable id for
// Figure 5/6-style output-pattern plots).

#ifndef NSTREAM_TYPES_TUPLE_H_
#define NSTREAM_TYPES_TUPLE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/clock.h"
#include "types/schema.h"
#include "types/value.h"

namespace nstream {

/// A relational tuple. Values are positional; the schema lives on the
/// stream (operators know their input/output schemas), not on each
/// tuple, keeping tuples small.
class Tuple {
 public:
  Tuple() = default;
  explicit Tuple(std::vector<Value> values) : values_(std::move(values)) {}

  int size() const { return static_cast<int>(values_.size()); }
  const Value& value(int i) const { return values_[static_cast<size_t>(i)]; }
  Value& mutable_value(int i) { return values_[static_cast<size_t>(i)]; }
  const std::vector<Value>& values() const { return values_; }

  void Append(Value v) { values_.push_back(std::move(v)); }
  void Reserve(size_t n) { values_.reserve(n); }

  /// Engine-assigned monotone id (per source); 0 when unset.
  int64_t id() const { return id_; }
  void set_id(int64_t id) { id_ = id; }

  /// System time at which the tuple entered the engine. Used by PACE and
  /// by the timeliness metrics. -1 when unset.
  TimeMs arrival_ms() const { return arrival_ms_; }
  void set_arrival_ms(TimeMs t) { arrival_ms_ = t; }

  bool operator==(const Tuple& o) const { return values_ == o.values_; }
  bool operator!=(const Tuple& o) const { return !(*this == o); }

  /// Hash over a subset of attribute positions (join keys, group
  /// keys). Inline: runs once per probe/insert on the join hot path.
  size_t HashSubset(const std::vector<int>& indices) const {
    size_t h = 0xcbf29ce484222325ULL;
    for (int i : indices) {
      h ^= values_[static_cast<size_t>(i)].Hash();
      h *= 0x100000001b3ULL;
    }
    return h;
  }

  /// Equality restricted to a subset of attribute positions. Inline:
  /// this is the collision check behind every hashed join probe.
  bool EqualsSubset(const Tuple& other, const std::vector<int>& mine,
                    const std::vector<int>& theirs) const {
    if (mine.size() != theirs.size()) return false;
    for (size_t k = 0; k < mine.size(); ++k) {
      if (!(values_[static_cast<size_t>(mine[k])] ==
            other.values_[static_cast<size_t>(theirs[k])])) {
        return false;
      }
    }
    return true;
  }

  /// "<v0, v1, ...>" rendering.
  std::string ToString() const;

 private:
  std::vector<Value> values_;
  int64_t id_ = 0;
  TimeMs arrival_ms_ = -1;
};

/// Convenience builder used heavily in tests and workload generators:
/// TupleBuilder().I64(3).D(51.2).Ts(9000).Build().
class TupleBuilder {
 public:
  TupleBuilder& Null() {
    values_.push_back(Value::Null());
    return *this;
  }
  TupleBuilder& B(bool v) {
    values_.push_back(Value::Bool(v));
    return *this;
  }
  TupleBuilder& I64(int64_t v) {
    values_.push_back(Value::Int64(v));
    return *this;
  }
  TupleBuilder& D(double v) {
    values_.push_back(Value::Double(v));
    return *this;
  }
  TupleBuilder& S(std::string v) {
    values_.push_back(Value::String(std::move(v)));
    return *this;
  }
  TupleBuilder& Ts(TimeMs v) {
    values_.push_back(Value::Timestamp(v));
    return *this;
  }
  TupleBuilder& V(Value v) {
    values_.push_back(std::move(v));
    return *this;
  }

  Tuple Build() { return Tuple(std::move(values_)); }

 private:
  std::vector<Value> values_;
};

}  // namespace nstream

#endif  // NSTREAM_TYPES_TUPLE_H_
