// TupleArena: a chunked bump allocator that backs tuple payloads with
// page-granular lifetime. The paper's inter-operator communication
// (§5) moves tuples in pages; making the page the unit of memory
// ownership lets the engine allocate a result tuple's value span (and
// its string bytes) with a pointer bump and free the whole page's
// worth of payloads wholesale when the page is consumed — instead of
// one malloc per tuple plus one per string value.
//
// Ownership rules (see docs/ARCHITECTURE.md "Memory model"):
//   * An arena is owned by exactly one Page (or one operator-local
//     staging structure) and moves with it through the data path.
//   * Values stored in arena-backed tuples must be trivially
//     destructible — arena-resident string Values BORROW arena bytes
//     (Value's StringRef alternative) instead of owning a
//     std::string. Tuple's arena-aware append enforces this.
//   * Anything that outlives its page must be promoted to owned
//     storage (Tuple::Promote) or re-homed into the destination
//     page's arena (Tuple::Rehome). Plain Tuple/Value copies always
//     deep-copy into owned storage, so accidental escapes are safe.

#ifndef NSTREAM_TYPES_TUPLE_ARENA_H_
#define NSTREAM_TYPES_TUPLE_ARENA_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <functional>
#include <memory>
#include <string_view>
#include <vector>

namespace nstream {

class TupleArena {
 public:
  // Fixed chunk size. 16 KiB holds a 128-tuple page of small tuples
  // in one chunk, so the steady-state cost is a handful of chunk
  // grabs per page, not per tuple. Chunks are RECYCLED through a
  // process-wide pool (see tuple_arena.cc): a consumed page returns
  // its chunks, the next staged page reuses the same warm memory —
  // without the pool every page generation would touch fresh cold
  // bytes and the first-touch faults would eat the allocation win.
  // Requests larger than a chunk get a dedicated (non-pooled) block.
  static constexpr size_t kChunkBytes = 16 * 1024;

  TupleArena() = default;
  ~TupleArena();  // pooled chunks go back to the pool
  TupleArena(const TupleArena&) = delete;
  TupleArena& operator=(const TupleArena&) = delete;
  TupleArena(TupleArena&&) = delete;  // pages move the unique_ptr, never
  TupleArena& operator=(TupleArena&&) = delete;  // the arena object

  /// Bump-allocate `bytes` with `align` alignment. Never fails (grows
  /// a new chunk when the current one is exhausted).
  void* Allocate(size_t bytes, size_t align) {
    uintptr_t p = reinterpret_cast<uintptr_t>(head_);
    uintptr_t aligned = (p + (align - 1)) & ~(uintptr_t{align} - 1);
    if (aligned + bytes > reinterpret_cast<uintptr_t>(end_)) {
      return AllocateSlow(bytes, align);
    }
    head_ = reinterpret_cast<char*>(aligned + bytes);
    used_ += bytes;
    return reinterpret_cast<void*>(aligned);
  }

  /// Uninitialized span of `n` objects; the caller placement-news into
  /// it. Types stored in an arena must be freed wholesale, so their
  /// destructors are never run — see the ownership rules above.
  template <typename T>
  T* AllocateSpan(size_t n) {
    return static_cast<T*>(Allocate(n * sizeof(T), alignof(T)));
  }

  /// Copy `s` into the arena; the returned view borrows arena bytes
  /// and stays valid exactly as long as the arena does.
  std::string_view CopyString(std::string_view s) {
    if (s.empty()) return std::string_view();
    char* dst = static_cast<char*>(Allocate(s.size(), 1));
    std::memcpy(dst, s.data(), s.size());
    return std::string_view(dst, s.size());
  }

  /// True when `p` points into one of this arena's chunks. Used by
  /// Tuple::Append to recognise a borrowed string that already lives
  /// here and skip the re-copy (Value::StringIn + Append is the
  /// documented construction pattern; without this check the bytes
  /// would land in the arena twice). O(chunks); chunk counts are
  /// single digits per page.
  bool Owns(const char* p) const {
    std::less<const char*> lt;
    for (const std::unique_ptr<char[]>& c : chunks_) {
      if (!lt(p, c.get()) && lt(p, c.get() + kChunkBytes)) return true;
    }
    for (size_t i = 0; i < big_chunks_.size(); ++i) {
      const char* base = big_chunks_[i].get();
      if (!lt(p, base) && lt(p, base + big_sizes_[i])) return true;
    }
    return false;
  }

  /// Payload bytes handed out (excludes chunk slack).
  size_t bytes_used() const { return used_; }
  size_t chunk_count() const { return chunks_.size() + big_chunks_.size(); }

 private:
  void* AllocateSlow(size_t bytes, size_t align);

  // Pooled fixed-size chunks (all kChunkBytes) and dedicated
  // oversized blocks (freed outright, never pooled; sizes tracked in
  // parallel for Owns()).
  std::vector<std::unique_ptr<char[]>> chunks_;
  std::vector<std::unique_ptr<char[]>> big_chunks_;
  std::vector<size_t> big_sizes_;
  char* head_ = nullptr;
  char* end_ = nullptr;
  size_t used_ = 0;
};

/// Global kill switch for page arenas, consulted by Page::arena().
/// Default on; tests and benches flip it to A/B the arena path against
/// the owned-allocation fallback on identical plans (equivalence
/// suites assert the same result multisets either way).
class TupleArenas {
 public:
  static bool enabled() {
    return enabled_.load(std::memory_order_relaxed);
  }
  static void SetEnabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }

 private:
  static inline std::atomic<bool> enabled_{true};
};

/// RAII toggle for tests: arenas off (or on) within a scope.
class ScopedTupleArenasEnabled {
 public:
  explicit ScopedTupleArenasEnabled(bool on)
      : prev_(TupleArenas::enabled()) {
    TupleArenas::SetEnabled(on);
  }
  ~ScopedTupleArenasEnabled() { TupleArenas::SetEnabled(prev_); }
  ScopedTupleArenasEnabled(const ScopedTupleArenasEnabled&) = delete;
  ScopedTupleArenasEnabled& operator=(const ScopedTupleArenasEnabled&) =
      delete;

 private:
  bool prev_;
};

}  // namespace nstream

#endif  // NSTREAM_TYPES_TUPLE_ARENA_H_
