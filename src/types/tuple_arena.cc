#include "types/tuple_arena.h"

#include <mutex>

namespace nstream {
namespace {

// Process-wide recycling pool for fixed-size arena chunks. A consumed
// page's arena returns its chunks here; the next staged page grabs
// the same (cache- and TLB-warm) memory back. Without recycling every
// page generation bump-allocates fresh bytes, and the first-touch
// cost of that cold memory erases most of what skipping per-tuple
// malloc/free bought. The pool is shared across threads (pages are
// produced and consumed on different threads under the threaded
// executor): a mutex is plenty, since traffic is a few chunks per
// page, not per tuple.
class ChunkPool {
 public:
  // Cap the parked memory at 128 chunks (2 MiB with 16 KiB chunks) —
  // enough for every in-flight page of a deep pipeline; beyond that,
  // chunks are simply freed.
  static constexpr size_t kMaxParked = 128;

  static ChunkPool& Global() {
    static ChunkPool* pool = new ChunkPool();  // intentionally leaked
    return *pool;
  }

  std::unique_ptr<char[]> Get() {
    std::lock_guard<std::mutex> lock(mu_);
    if (parked_.empty()) return nullptr;
    std::unique_ptr<char[]> out = std::move(parked_.back());
    parked_.pop_back();
    return out;
  }

  void Put(std::unique_ptr<char[]> chunk) {
    std::lock_guard<std::mutex> lock(mu_);
    if (parked_.size() < kMaxParked) parked_.push_back(std::move(chunk));
  }

 private:
  std::mutex mu_;
  std::vector<std::unique_ptr<char[]>> parked_;
};

}  // namespace

TupleArena::~TupleArena() {
  ChunkPool& pool = ChunkPool::Global();
  for (std::unique_ptr<char[]>& c : chunks_) pool.Put(std::move(c));
  // big_chunks_ free normally with the vector.
}

void* TupleArena::AllocateSlow(size_t bytes, size_t align) {
  size_t want = bytes + align;
  char* base;
  if (want > kChunkBytes) {
    // Oversized request: dedicated block, never pooled, and the bump
    // cursor stays on the current standard chunk (an oversized string
    // must not strand the remainder of a fresh 16 KiB chunk).
    auto big = std::unique_ptr<char[]>(new char[want]);
    base = big.get();
    big_chunks_.push_back(std::move(big));
    big_sizes_.push_back(want);
    uintptr_t aligned =
        (reinterpret_cast<uintptr_t>(base) + (align - 1)) &
        ~(uintptr_t{align} - 1);
    used_ += bytes;
    return reinterpret_cast<void*>(aligned);
  }
  std::unique_ptr<char[]> chunk = ChunkPool::Global().Get();
  if (chunk == nullptr) {
    // Default-init (no value-init): make_unique<char[]> would memset
    // every chunk, charging each page ~a cache-line wipe per tuple.
    chunk = std::unique_ptr<char[]>(new char[kChunkBytes]);
  }
  base = chunk.get();
  chunks_.push_back(std::move(chunk));
  head_ = base;
  end_ = base + kChunkBytes;

  uintptr_t aligned = (reinterpret_cast<uintptr_t>(head_) + (align - 1)) &
                      ~(uintptr_t{align} - 1);
  head_ = reinterpret_cast<char*>(aligned + bytes);
  used_ += bytes;
  return reinterpret_cast<void*>(aligned);
}

}  // namespace nstream
