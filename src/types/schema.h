// Schema: an ordered list of named, typed attributes. Schemas are
// immutable and shared (shared_ptr) between operators, punctuation, and
// feedback machinery; attribute positions are the currency in which
// punctuation patterns are expressed.

#ifndef NSTREAM_TYPES_SCHEMA_H_
#define NSTREAM_TYPES_SCHEMA_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "types/value.h"

namespace nstream {

/// One attribute of a schema.
struct Field {
  std::string name;
  ValueType type = ValueType::kNull;

  Field() = default;
  Field(std::string n, ValueType t) : name(std::move(n)), type(t) {}

  bool operator==(const Field& o) const {
    return name == o.name && type == o.type;
  }
};

class Schema;
using SchemaPtr = std::shared_ptr<const Schema>;

/// Immutable attribute list. Construct via Schema::Make.
class Schema {
 public:
  static SchemaPtr Make(std::vector<Field> fields) {
    return std::make_shared<const Schema>(std::move(fields));
  }

  explicit Schema(std::vector<Field> fields)
      : fields_(std::move(fields)) {}

  int num_fields() const { return static_cast<int>(fields_.size()); }
  const Field& field(int i) const { return fields_[static_cast<size_t>(i)]; }
  const std::vector<Field>& fields() const { return fields_; }

  /// Position of the attribute named `name`, or error.
  Result<int> IndexOf(const std::string& name) const;

  /// True if `i` is a valid attribute position.
  bool HasIndex(int i) const {
    return i >= 0 && i < num_fields();
  }

  bool Equals(const Schema& other) const {
    return fields_ == other.fields_;
  }

  /// New schema keeping only `indices`, in the given order.
  Result<SchemaPtr> Project(const std::vector<int>& indices) const;

  /// New schema concatenating this and `other` (join output style).
  SchemaPtr Concat(const Schema& other) const;

  /// "(name:type, ...)" rendering.
  std::string ToString() const;

 private:
  std::vector<Field> fields_;
};

}  // namespace nstream

#endif  // NSTREAM_TYPES_SCHEMA_H_
