#include "exec/query_plan.h"

#include <deque>

#include "common/string_util.h"

namespace nstream {

int64_t QueryPlan::Add(std::unique_ptr<Operator> op) {
  int64_t id = static_cast<int64_t>(ops_.size());
  op->set_id(id);
  ops_.push_back(std::move(op));
  return id;
}

Status QueryPlan::Connect(int64_t producer, int producer_port,
                          int64_t consumer, int consumer_port) {
  if (producer < 0 || producer >= num_operators() || consumer < 0 ||
      consumer >= num_operators()) {
    return Status::OutOfRange("Connect: unknown operator id");
  }
  const Operator* p = op(producer);
  const Operator* c = op(consumer);
  if (producer_port < 0 || producer_port >= p->num_outputs()) {
    return Status::OutOfRange(StringPrintf(
        "Connect: %s has no output port %d", p->name().c_str(),
        producer_port));
  }
  if (consumer_port < 0 || consumer_port >= c->num_inputs()) {
    return Status::OutOfRange(StringPrintf(
        "Connect: %s has no input port %d", c->name().c_str(),
        consumer_port));
  }
  if (edge_out_of(producer, producer_port) != -1) {
    return Status::AlreadyExists(StringPrintf(
        "Connect: output port %d of %s already wired", producer_port,
        p->name().c_str()));
  }
  if (edge_into(consumer, consumer_port) != -1) {
    return Status::AlreadyExists(StringPrintf(
        "Connect: input port %d of %s already wired", consumer_port,
        c->name().c_str()));
  }
  edges_.push_back({producer, producer_port, consumer, consumer_port});
  return Status::OK();
}

int QueryPlan::edge_into(int64_t consumer, int port) const {
  for (size_t i = 0; i < edges_.size(); ++i) {
    if (edges_[i].consumer == consumer &&
        edges_[i].consumer_port == port) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

int QueryPlan::edge_out_of(int64_t producer, int port) const {
  for (size_t i = 0; i < edges_.size(); ++i) {
    if (edges_[i].producer == producer &&
        edges_[i].producer_port == port) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

bool QueryPlan::EdgeSpscEligible(int edge_index) const {
  if (edge_index < 0 ||
      edge_index >= static_cast<int>(edges_.size())) {
    return false;
  }
  const PlanEdge& e = edges_[static_cast<size_t>(edge_index)];
  int producers = 0;
  int consumers = 0;
  for (const PlanEdge& o : edges_) {
    if (o.producer == e.producer && o.producer_port == e.producer_port) {
      ++producers;
    }
    if (o.consumer == e.consumer && o.consumer_port == e.consumer_port) {
      ++consumers;
    }
  }
  return producers == 1 && consumers == 1;
}

Status QueryPlan::Finalize() {
  if (finalized_) return Status::OK();
  if (ops_.empty()) return Status::InvalidArgument("empty plan");

  // Every port must be wired exactly once (Connect enforces "at most").
  for (const auto& o : ops_) {
    for (int i = 0; i < o->num_inputs(); ++i) {
      if (edge_into(o->id(), i) == -1) {
        return Status::FailedPrecondition(StringPrintf(
            "input port %d of %s unwired", i, o->name().c_str()));
      }
    }
    for (int p = 0; p < o->num_outputs(); ++p) {
      if (edge_out_of(o->id(), p) == -1) {
        return Status::FailedPrecondition(StringPrintf(
            "output port %d of %s unwired", p, o->name().c_str()));
      }
    }
  }

  // Kahn topological sort.
  std::vector<int> indegree(ops_.size(), 0);
  for (const PlanEdge& e : edges_) {
    ++indegree[static_cast<size_t>(e.consumer)];
  }
  std::deque<int64_t> ready;
  for (const auto& o : ops_) {
    if (indegree[static_cast<size_t>(o->id())] == 0) {
      ready.push_back(o->id());
    }
  }
  topo_order_.clear();
  while (!ready.empty()) {
    int64_t id = ready.front();
    ready.pop_front();
    topo_order_.push_back(id);
    for (const PlanEdge& e : edges_) {
      if (e.producer == id) {
        if (--indegree[static_cast<size_t>(e.consumer)] == 0) {
          ready.push_back(e.consumer);
        }
      }
    }
  }
  if (topo_order_.size() != ops_.size()) {
    return Status::InvalidArgument("plan contains a cycle");
  }

  // Schema inference in topological order.
  for (int64_t id : topo_order_) {
    Operator* o = op(id);
    NSTREAM_RETURN_NOT_OK(o->InferSchemas());
    for (const PlanEdge& e : edges_) {
      if (e.producer == id) {
        NSTREAM_RETURN_NOT_OK(ops_[static_cast<size_t>(e.consumer)]
                                  ->SetInputSchema(
                                      e.consumer_port,
                                      o->output_schema(e.producer_port)));
      }
    }
  }
  finalized_ = true;
  return Status::OK();
}

std::string QueryPlan::ToString() const {
  std::string out = "QueryPlan{\n";
  for (const auto& o : ops_) {
    out += StringPrintf("  #%lld %s (%d in, %d out)\n",
                        static_cast<long long>(o->id()),
                        o->name().c_str(), o->num_inputs(),
                        o->num_outputs());
  }
  for (const PlanEdge& e : edges_) {
    out += StringPrintf(
        "  %s.out%d -> %s.in%d\n",
        ops_[static_cast<size_t>(e.producer)]->name().c_str(),
        e.producer_port,
        ops_[static_cast<size_t>(e.consumer)]->name().c_str(),
        e.consumer_port);
  }
  out += "}";
  return out;
}

}  // namespace nstream
