#include "exec/threaded_executor.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>
#include <vector>

#include "common/logging.h"
#include "exec/exec_context.h"
#include "exec/runtime.h"

namespace nstream {
namespace {

/// Per-operator sleep/wake object (§5: "each operator has an object
/// that it sleeps on when it has no work to do").
struct WakeObject {
  std::mutex mu;
  std::condition_variable cv;
  bool signaled = false;

  void Notify() {
    {
      std::lock_guard<std::mutex> lock(mu);
      signaled = true;
    }
    cv.notify_one();
  }

  void Wait() {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait_for(lock, std::chrono::milliseconds(2),
                [&] { return signaled; });
    signaled = false;
  }
};

class ThreadedContext final : public ExecContext {
 public:
  ThreadedContext(PlanRuntime* rt, int64_t op_id, const WallClock* clock,
                  ChargePolicy charge_policy)
      : rt_(rt),
        op_id_(op_id),
        clock_(clock),
        charge_policy_(charge_policy) {}

  void EmitTuple(int out_port, Tuple t) override {
    if (t.arrival_ms() < 0) t.set_arrival_ms(clock_->NowMs());
    rt_->output_conn(op_id_, out_port)->data->PushTuple(std::move(t));
  }
  void EmitPunct(int out_port, Punctuation p) override {
    rt_->output_conn(op_id_, out_port)
        ->data->PushPunctuation(std::move(p));
  }
  void EmitEos(int out_port) override {
    rt_->output_conn(op_id_, out_port)->data->PushEos();
  }
  void EmitPage(int out_port, Page&& page) override {
    if (page.is_columnar()) {
      ColumnarBlock* b = page.columnar();
      TimeMs* arr = b->mutable_arrivals();
      const TimeMs now = clock_->NowMs();
      for (uint32_t i = 0, n = b->rows(); i < n; ++i) {
        if (arr[i] < 0) arr[i] = now;
      }
    } else {
      for (StreamElement& e : page.mutable_elements()) {
        if (e.mutable_tuple().arrival_ms() < 0) {
          e.mutable_tuple().set_arrival_ms(clock_->NowMs());
        }
      }
    }
    rt_->output_conn(op_id_, out_port)->data->PushPage(std::move(page));
  }
  bool PagedEmissionPreferred() const override { return true; }
  TupleArena* OpenPageArena(int out_port) override {
    // Safe from the operator's own thread only — exactly the thread
    // that ever calls EmitTuple on this context. The queue declines
    // (null) on transports whose open page is not producer-local.
    return rt_->output_conn(op_id_, out_port)->data->OpenPageArena();
  }
  void EmitFeedback(int in_port, FeedbackPunctuation fb) override {
    rt_->input_conn(op_id_, in_port)
        ->control->Push(ControlMessage::Feedback(std::move(fb)));
  }
  void EmitControl(int in_port, ControlMessage msg) override {
    rt_->input_conn(op_id_, in_port)->control->Push(std::move(msg));
  }
  TimeMs NowMs() const override { return clock_->NowMs(); }
  void ChargeMs(double cost_ms) override {
    if (cost_ms <= 0) return;
    switch (charge_policy_) {
      case ChargePolicy::kIgnore:
        break;
      case ChargePolicy::kSleep:
        std::this_thread::sleep_for(
            std::chrono::duration<double, std::milli>(cost_ms));
        break;
      case ChargePolicy::kSpin: {
        auto end = std::chrono::steady_clock::now() +
                   std::chrono::duration_cast<
                       std::chrono::steady_clock::duration>(
                       std::chrono::duration<double, std::milli>(cost_ms));
        while (std::chrono::steady_clock::now() < end) {
        }
        break;
      }
    }
  }
  int PurgeInput(int in_port, const PunctPattern& pattern) override {
    return rt_->input_conn(op_id_, in_port)
        ->data->PurgeMatching(pattern);
  }
  int PrioritizeInput(int in_port, const PunctPattern& pattern) override {
    return rt_->input_conn(op_id_, in_port)
        ->data->PromoteMatching(pattern);
  }

 private:
  PlanRuntime* rt_;
  int64_t op_id_;
  const WallClock* clock_;
  ChargePolicy charge_policy_;
};

}  // namespace

Status ThreadedExecutor::Run(QueryPlan* plan) {
  if (!plan->finalized()) {
    NSTREAM_RETURN_NOT_OK(plan->Finalize());
  }
  NSTREAM_ASSIGN_OR_RETURN(
      std::unique_ptr<PlanRuntime> rt,
      PlanRuntime::Create(plan, options_.queue,
                          options_.use_spsc_rings
                              ? EdgeTransportPolicy::kSpscWhereEligible
                              : EdgeTransportPolicy::kMutexDeque));

  const int n = plan->num_operators();
  WallClock clock;
  std::vector<std::unique_ptr<ThreadedContext>> contexts;
  std::vector<std::unique_ptr<WakeObject>> wakes;
  std::vector<Status> results(static_cast<size_t>(n));
  std::atomic<bool> abort{false};

  for (int64_t id = 0; id < n; ++id) {
    contexts.push_back(std::make_unique<ThreadedContext>(
        rt.get(), id, &clock, options_.charge_policy));
    wakes.push_back(std::make_unique<WakeObject>());
  }
  // Wire wakeups: a new input page or output-side control message wakes
  // the operator's thread.
  for (int64_t id = 0; id < n; ++id) {
    Operator* op = plan->op(id);
    WakeObject* wake = wakes[static_cast<size_t>(id)].get();
    for (int p = 0; p < op->num_inputs(); ++p) {
      rt->input_conn(id, p)->data->SetConsumerNotifier(
          [wake] { wake->Notify(); });
    }
    for (int p = 0; p < op->num_outputs(); ++p) {
      rt->output_conn(id, p)->control->SetNotifier(
          [wake] { wake->Notify(); });
    }
    if (op->is_source()) {
      static_cast<SourceOperator*>(op)->SetWakeNotifier(
          [wake] { wake->Notify(); });
    }
  }
  for (int64_t id = 0; id < n; ++id) {
    NSTREAM_RETURN_NOT_OK(
        plan->op(id)->Open(contexts[static_cast<size_t>(id)].get()));
  }

  auto op_body = [&](int64_t id) -> Status {
    Operator* op = plan->op(id);
    ThreadedContext* ctx = contexts[static_cast<size_t>(id)].get();
    WakeObject* wake = wakes[static_cast<size_t>(id)].get();
    const TimeMs start_wall = clock.NowMs();

    bool source_done = !op->is_source();
    while (!abort.load(std::memory_order_relaxed)) {
      // 1. Control messages first — they are high priority (§5).
      bool did_work = false;
      for (int p = 0; p < op->num_outputs(); ++p) {
        ControlChannel* ch = rt->output_conn(id, p)->control.get();
        while (auto msg = ch->TryPop()) {
          NSTREAM_RETURN_NOT_OK(op->ProcessControl(p, *msg));
          did_work = true;
        }
      }

      // 2. Sources produce.
      if (op->is_source() && !source_done) {
        auto* src = static_cast<SourceOperator*>(op);
        const SourcePoll poll = src->Poll();
        if (src->shutdown_requested() ||
            poll == SourcePoll::kExhausted) {
          for (int p = 0; p < op->num_outputs(); ++p) ctx->EmitEos(p);
          source_done = true;
          break;  // a source's job ends with EOS
        }
        if (poll == SourcePoll::kIdle) {
          // Open but drained: park on the wake object. The source's
          // wake notifier (wired above) fires when input arrives; a
          // push racing this wait is caught by the wake latch.
          wake->Wait();
          continue;
        }
        if (options_.pace_sources) {
          std::optional<TimeMs> next = src->NextArrivalMs();
          TimeMs due = start_wall +
                       static_cast<TimeMs>(
                           static_cast<double>(next.value_or(0)) *
                           options_.pace_scale);
          TimeMs now = clock.NowMs();
          if (due > now) {
            std::this_thread::sleep_for(
                std::chrono::milliseconds(due - now));
          }
        }
        NSTREAM_RETURN_NOT_OK(src->ProduceNext());
        continue;
      }

      // 3. Drain up to max_pages_per_wake pages per input — a single
      // batch call per page — then loop back to re-check control.
      const int budget = std::max(1, options_.max_pages_per_wake);
      for (int round = 0; round < budget && !op->finished(); ++round) {
        bool popped_any = false;
        for (int p = 0; p < op->num_inputs(); ++p) {
          DataQueue* q = rt->input_conn(id, p)->data.get();
          std::optional<Page> page = q->TryPopPage();
          if (!page) continue;
          popped_any = did_work = true;
          NSTREAM_RETURN_NOT_OK(
              op->ProcessPage(p, std::move(*page), nullptr));
        }
        if (!popped_any) break;
      }
      if (op->finished()) break;  // all inputs hit EOS
      if (!did_work) wake->Wait();
    }
    return Status::OK();
  };

  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(n));
  for (int64_t id = 0; id < n; ++id) {
    threads.emplace_back([&, id] {
      Status st = op_body(id);
      results[static_cast<size_t>(id)] = st;
      if (!st.ok()) abort.store(true, std::memory_order_relaxed);
    });
  }
  for (auto& t : threads) t.join();

  for (int64_t id = 0; id < n; ++id) {
    NSTREAM_RETURN_NOT_OK(results[static_cast<size_t>(id)]);
  }
  for (int64_t id = 0; id < n; ++id) {
    NSTREAM_RETURN_NOT_OK(plan->op(id)->Close());
  }
  return Status::OK();
}

}  // namespace nstream
