// Scheduler / PooledExecutor: resumable operator tasks on a fixed-size
// worker pool (ROADMAP item 3). ThreadedExecutor spawns one thread per
// operator — fine for one plan, fatal for thousands of concurrent
// queries. Here each operator becomes a TASK driven through a small
// state machine:
//
//        Submit                   Wake (page/control arrives)
//   ┌──> kQueued ──pop──> kRunning ──no work──> kWaiting ──┐
//   │       ^                │  │                          │
//   │       │   did work /   │  └── finished / query ──> kKilled
//   │       └── wake_pending ┘      failed
//   └──────────────────────────────────────────────────────┘
//
// A task SLICE is one iteration of the classic operator loop (§5):
// drain output-side control channels first, sources produce a bounded
// batch, then drain up to `max_pages_per_wake` pages per input. Wakes
// come from queue-readiness notifiers (DataQueue consumer notifier →
// consumer task; ControlChannel notifier → producer task) instead of
// parked per-operator threads. All state transitions happen under one
// scheduler mutex, so wakes are never lost: a wake that races a
// running slice sets `wake_pending`, which the slice's completion
// converts into a re-enqueue.
//
// Transports: every push the pool makes must be NON-BLOCKING — with a
// fixed pool, a producer slice parked on backpressure can starve the
// very consumer task that would drain the queue (guaranteed deadlock
// at pool size 1). Submit therefore wires plans with
// EdgeTransportPolicy::kSpscChainWhereEligible (unbounded SPSC chain /
// unbounded mutex deque) and forces max_pages = 0.
//
// SPSC soundness under worker migration: each queue side is pinned to
// one task, a task runs on at most one worker at a time, and the
// worker handoff goes through the scheduler mutex (release/acquire),
// so the chain's single-writer fields see proper happens-before. The
// DataQueue consumer-affinity tripwire enforces the consumer half of
// this at runtime (tokens set per slice).
//
// Manual mode (`SchedulerOptions::manual`) starts no workers and
// exposes the ready set for external driving — the deterministic
// scheduling-test harness (tests/testing/sched_harness.h) picks slices
// from a seeded RNG, defers wakes through SetWakeHook, and runs
// against a VirtualClock so interleavings reproduce from a seed.

#ifndef NSTREAM_EXEC_SCHEDULER_H_
#define NSTREAM_EXEC_SCHEDULER_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "common/status.h"
#include "exec/query_plan.h"
#include "exec/runtime.h"
#include "recovery/checkpoint.h"

namespace nstream {

/// Operator-task lifecycle states.
enum class TaskState : uint8_t {
  kQueued = 0,  // in the ready set, awaiting a worker
  kRunning,     // a worker (or manual step) is executing a slice
  kWaiting,     // no pending work; parked until a wake (or due time)
  kKilled,      // finished, or its query failed — never runs again
};

const char* TaskStateName(TaskState s);

/// Identifies one submitted plan; wakes and introspection are scoped
/// by it so concurrent queries never cross-talk.
using QueryId = int64_t;

struct SchedulerOptions {
  /// Worker threads (ignored in manual mode). The pool size bounds
  /// thread count regardless of how many plans/operators are live.
  int num_workers = 2;
  /// Per-edge queue tuning. max_pages is forced to 0 (unbounded) at
  /// Submit: pooled pushes must never block (see file comment).
  DataQueueOptions queue{/*page_size=*/128, /*max_pages=*/0};
  ChargePolicy charge_policy = ChargePolicy::kIgnore;
  /// When true, each source produces only elements whose
  /// NextArrivalMs() * pace_scale is due on the scheduler clock; a
  /// source ahead of time parks WAITING until its due instant.
  bool pace_sources = false;
  double pace_scale = 1.0;
  /// Pages an operator may drain per input per slice before the slice
  /// ends (control is re-checked between slices). The drain budget
  /// that keeps one busy operator from starving the pool.
  int max_pages_per_wake = 1;
  /// Elements a source may produce per slice (its drain budget).
  int source_batch_per_slice = 32;
  /// SPSC-eligible edges get the unbounded lock-free chain; others the
  /// unbounded mutex deque. Off = mutex deque everywhere (A/B hedge).
  bool use_lockfree_queues = true;
  /// Manual mode: no worker threads; drive with ReadyCount /
  /// StepReadyAt / ReleaseDue / NextDueMs. Single-threaded by design.
  bool manual = false;
  /// Deterministic time source for manual mode (implies manual; the
  /// driver owns clock advancement). ChargeMs then accrues to the
  /// running slice and BUSY-PARKS the task until now + charge instead
  /// of sleeping/spinning: a charged operator is unavailable for that
  /// long while free operators keep running at the current instant —
  /// exact, box-speed-independent cost dynamics (wakes landing in a
  /// busy window coalesce into the release).
  VirtualClock* virtual_clock = nullptr;
};

/// Monotonic counters (tests/benches). Aggregated across all queries.
struct SchedulerStats {
  uint64_t slices = 0;            // task slices executed
  uint64_t wakes_delivered = 0;   // wake moved a task WAITING → QUEUED
  uint64_t wakes_coalesced = 0;   // wake landed on a RUNNING task
  uint64_t wakes_ignored = 0;     // wake on a QUEUED/KILLED task
  uint64_t requeues = 0;          // slice did work and re-enqueued
  uint64_t tasks_created = 0;
  uint64_t tasks_killed = 0;
  uint64_t affinity_violations = 0;  // summed over all edges' queues
};

class Scheduler {
 public:
  explicit Scheduler(SchedulerOptions options = {});
  ~Scheduler();

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Register a plan: build its runtime (non-blocking transports),
  /// wire queue/control notifiers to task wakes, Open every operator,
  /// and enqueue all tasks. Returns the query's id. The plan must
  /// outlive the scheduler (or its Wait call).
  Result<QueryId> Submit(QueryPlan* plan);

  /// Submit a rebuilt plan and restore it from a snapshot file before
  /// any slice runs: operator state is rewound to the checkpoint's
  /// punctuation-aligned cut, in-flight queue pages are refilled, and
  /// sources resume from their recorded offsets (at-least-once
  /// replay). The plan must be structurally identical to the one that
  /// wrote the snapshot.
  Result<QueryId> SubmitRecovered(QueryPlan* plan,
                                  const std::string& snapshot_path);

  /// Pool mode: block until the query completes, then Close its
  /// operators and return the first error (slice or Close). Manual
  /// mode: FailedPrecondition unless the query is already done.
  ///
  /// Stall watchdog: a non-negative `timeout_ms` bounds the wait
  /// (pool mode); on expiry Wait returns DeadlineExceeded carrying
  /// StallReport() — every task's state and every edge's queue depths
  /// — instead of hanging forever on a wedged plan.
  Status Wait(QueryId id, double timeout_ms = -1);

  // ---- Punctuation-aligned checkpointing ----
  /// Begin an asynchronous checkpoint of one query: a barrier
  /// punctuation (Punctuation::Barrier) is injected at every source,
  /// each task parks once the barrier has arrived on all of its live
  /// inputs (EOS ports count as aligned), and when the whole plan is
  /// quiesced the CheckpointCoordinator serializes operators + queues
  /// and publishes the snapshot atomically — no stop-the-world: tasks
  /// keep processing pre-barrier work until their own alignment.
  /// FailedPrecondition if a checkpoint is already in progress.
  Status StartCheckpoint(QueryId id, CheckpointOptions opts);
  /// Poll the result of StartCheckpoint: nullopt while in progress,
  /// the (consumed) outcome once finished. Manual-mode drivers
  /// interleave this with StepReadyAt.
  std::optional<Status> CheckpointResult(QueryId id);
  /// Pool-mode convenience: StartCheckpoint + block for the result.
  Status Checkpoint(QueryId id, const std::string& path);

  /// Human-readable dump of every live query: per task — operator
  /// name, state, wake/park flags, due time; per edge — data-queue and
  /// control-channel depths. The stall watchdog attaches it to
  /// DeadlineExceeded; harnesses print it on wedged drives.
  std::string StallReport();

  bool Done(QueryId id);
  /// True when every submitted query has completed (true when none).
  bool AllDone();

  /// Spurious-wake storm: wake every live task of every query. Wakes
  /// must be idempotent; tests hammer this concurrently with runs.
  void WakeAll();

  // ---- Manual-mode driving surface ----
  /// Number of tasks currently ready to step.
  size_t ReadyCount();
  /// Run one slice of the index-th ready task (0-based). OutOfRange
  /// if the index is stale; slice errors are recorded in the owning
  /// query (returned by Wait), not here — the drive loop goes on.
  Status StepReadyAt(size_t index);
  /// Enqueue every WAITING task whose paced due time is <= now_ms.
  /// Returns how many were released.
  int ReleaseDue(TimeMs now_ms);
  /// Earliest paced due time among WAITING tasks, if any.
  std::optional<TimeMs> NextDueMs();
  /// Manual-mode wake interception: return true to swallow the wake
  /// (the harness re-injects it later via InjectWake). Install before
  /// submitting; manual mode only.
  using WakeHook = std::function<bool(QueryId id, int64_t op_id)>;
  void SetWakeHook(WakeHook hook);
  /// Deliver a (possibly deferred) wake to one task. No-op on
  /// unknown ids; bypasses the wake hook.
  void InjectWake(QueryId id, int64_t op_id);

  // ---- Introspection ----
  SchedulerStats stats() const;
  TaskState task_state(QueryId id, int64_t op_id) const;
  /// Bitmask of workers that ever ran the task (bit i = worker i).
  uint32_t task_worker_mask(QueryId id, int64_t op_id) const;
  Clock* clock() { return clock_; }
  int num_workers() const { return static_cast<int>(workers_.size()); }

  /// Stop the pool and join workers. In-flight queries are abandoned
  /// (their Wait unblocks with Cancelled). The destructor calls this.
  void Shutdown();

 private:
  struct Task;
  struct QueryRun;
  struct SliceResult;

  void WorkerLoop(int worker);
  SliceResult RunSlice(Task* t);
  SliceResult RunSliceBody(Task* t);
  void OnSliceDoneLocked(Task* t, const SliceResult& r, int worker);
  void EnqueueLocked(Task* t);
  void WakeLocked(Task* t);
  void Wake(Task* t);
  void KillTaskLocked(Task* t);
  void FailRunLocked(QueryRun* run, const Status& status);
  Task* PopReadyLocked(int worker);
  /// Copy checkpoint epoch + barrier bookkeeping into the task's
  /// slice-owned fields; every RUNNING transition goes through this.
  void PrepareSliceLocked(Task* t);
  void PruneKilledLocked();
  int PromoteDueLocked(TimeMs now_ms);
  std::optional<TimeMs> NextDueLocked() const;
  QueryRun* FindRunLocked(QueryId id) const;
  Result<QueryId> SubmitInternal(QueryPlan* plan,
                                 const std::string* snapshot_path);
  /// First run whose checkpoint is fully quiesced (every live task
  /// parked at the barrier); claims it (ckpt_serializing) so exactly
  /// one caller services it. Null when none.
  QueryRun* FindQuiescedCheckpointLocked();
  /// Serialize + publish a claimed quiesced checkpoint, then unpark
  /// its tasks. Called WITHOUT mu_ held.
  void ServiceCheckpoint(QueryRun* run);
  void AbortCheckpointLocked(QueryRun* run, const Status& status);
  std::string StallReportLocked();

  SchedulerOptions options_;
  WallClock wall_clock_;
  Clock* clock_ = nullptr;

  mutable std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  std::condition_variable ckpt_cv_;
  int64_t next_barrier_id_ = 1;
  bool stop_ = false;
  int idle_workers_ = 0;
  std::vector<std::thread> workers_;
  // Ready set: the shared deque plus one pinned deque per worker
  // (affinity-tagged tasks; only worker i pops pinned_[i]). Entries
  // may be stale (task killed while queued) — pops skip them.
  std::deque<Task*> ready_;
  std::vector<std::deque<Task*>> pinned_;
  std::vector<std::unique_ptr<QueryRun>> runs_;
  QueryId next_query_id_ = 1;
  SchedulerStats stats_;
  WakeHook wake_hook_;
};

/// Drop-in executor facade over Scheduler, mirroring the other
/// executors' Run(plan) shape for a single plan — or Submit several
/// and Wait on each for multi-query serving.
struct PooledExecutorOptions {
  int pool_size = 2;
  DataQueueOptions queue{/*page_size=*/128, /*max_pages=*/0};
  ChargePolicy charge_policy = ChargePolicy::kIgnore;
  bool pace_sources = false;
  double pace_scale = 1.0;
  int max_pages_per_wake = 1;
  int source_batch_per_slice = 32;
  bool use_lockfree_queues = true;
};

class PooledExecutor {
 public:
  explicit PooledExecutor(PooledExecutorOptions options = {});

  /// Submit + Wait: run one plan to completion on the pool.
  Status Run(QueryPlan* plan);

  Result<QueryId> Submit(QueryPlan* plan);
  /// Submit a rebuilt plan restored from a snapshot (see
  /// Scheduler::SubmitRecovered).
  Result<QueryId> SubmitRecovered(QueryPlan* plan,
                                  const std::string& snapshot_path);
  /// Optional watchdog deadline; see Scheduler::Wait.
  Status Wait(QueryId id, double timeout_ms = -1);
  /// Blocking punctuation-aligned checkpoint of one live query.
  Status Checkpoint(QueryId id, const std::string& path);

  Scheduler* scheduler() { return scheduler_.get(); }

 private:
  std::unique_ptr<Scheduler> scheduler_;
};

}  // namespace nstream

#endif  // NSTREAM_EXEC_SCHEDULER_H_
