// SimExecutor: deterministic discrete-event simulation of a pipelined
// (inter-operator parallel) stream engine under virtual time.
//
// NiagaraST runs operators as concurrent threads; latency dynamics like
// Experiment 1's imputed-tuple divergence (Figs. 5/6) arise from that
// parallelism plus cost asymmetry. Replaying those dynamics with real
// threads is timing-noisy and testbed-dependent, so this executor
// models each operator as a resource with its own busy-horizon:
//
//   * elements arrive at an operator's input buffer at virtual times;
//   * an idle operator starts the front element immediately; a busy one
//     starts it when the previous element's cost completes;
//   * emissions become available downstream at the completion instant;
//   * control messages (feedback) are high priority: they act on the
//     receiving operator immediately on arrival, ahead of buffered
//     data — matching NiagaraST's out-of-band control semantics.
//
// Everything is deterministic given the plan, cost model, and workload
// seed: runs are exactly reproducible, which the test suite exploits.

#ifndef NSTREAM_EXEC_SIM_EXECUTOR_H_
#define NSTREAM_EXEC_SIM_EXECUTOR_H_

#include <memory>

#include "common/clock.h"
#include "common/status.h"
#include "exec/cost_model.h"
#include "exec/query_plan.h"

namespace nstream {

struct SimExecutorOptions {
  CostModel cost;
  // One-way latency of a data hop between operators (queue transfer).
  double transfer_latency_ms = 0.0;
  // One-way latency of an upstream control hop (feedback delivery).
  double control_latency_ms = 0.0;
  // Virtual time at which the run starts.
  double start_ms = 0.0;
  // Safety valve against runaway plans.
  uint64_t max_events = 500'000'000;
};

class SimExecutor {
 public:
  explicit SimExecutor(SimExecutorOptions options = {});
  ~SimExecutor();

  /// Run the plan to completion under virtual time.
  Status Run(QueryPlan* plan);

  /// Virtual time after Run (ms).
  double now_ms() const;
  /// Total events processed (scheduling work, for ablations).
  uint64_t events_processed() const;

 private:
  class Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace nstream

#endif  // NSTREAM_EXEC_SIM_EXECUTOR_H_
