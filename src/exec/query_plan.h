// QueryPlan: the operator DAG. Owns the operators, records edges, runs
// schema inference in topological order, and validates that every port
// is wired exactly once. Executors consume the finalized plan.

#ifndef NSTREAM_EXEC_QUERY_PLAN_H_
#define NSTREAM_EXEC_QUERY_PLAN_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "exec/operator.h"

namespace nstream {

/// One producer→consumer edge.
struct PlanEdge {
  int64_t producer = -1;
  int producer_port = 0;
  int64_t consumer = -1;
  int consumer_port = 0;
};

class QueryPlan {
 public:
  QueryPlan() = default;
  QueryPlan(const QueryPlan&) = delete;
  QueryPlan& operator=(const QueryPlan&) = delete;

  /// Add an operator; returns its id. Ids are dense [0, num_operators).
  int64_t Add(std::unique_ptr<Operator> op);

  /// Convenience: add and return a typed raw pointer (plan keeps
  /// ownership). Usage: auto* sel = plan.AddOp(std::make_unique<...>());
  template <typename T>
  T* AddOp(std::unique_ptr<T> op) {
    T* raw = op.get();
    Add(std::move(op));
    return raw;
  }

  /// Wire producer's output port to consumer's input port.
  Status Connect(int64_t producer, int producer_port, int64_t consumer,
                 int consumer_port);
  /// Shorthand for single-port operators.
  Status Connect(const Operator& producer, const Operator& consumer) {
    return Connect(producer.id(), 0, consumer.id(), 0);
  }
  Status Connect(const Operator& producer, int producer_port,
                 const Operator& consumer, int consumer_port) {
    return Connect(producer.id(), producer_port, consumer.id(),
                   consumer_port);
  }

  /// Validate wiring, compute topological order, infer schemas.
  /// Must be called (successfully) before execution.
  Status Finalize();
  bool finalized() const { return finalized_; }

  int num_operators() const { return static_cast<int>(ops_.size()); }
  Operator* op(int64_t id) { return ops_[static_cast<size_t>(id)].get(); }
  const Operator* op(int64_t id) const {
    return ops_[static_cast<size_t>(id)].get();
  }
  const std::vector<PlanEdge>& edges() const { return edges_; }
  /// Topological order (producers before consumers); valid after
  /// Finalize.
  const std::vector<int64_t>& topo_order() const { return topo_order_; }

  /// Edge index feeding (consumer, port); -1 if unwired.
  int edge_into(int64_t consumer, int port) const;
  /// Edge index leaving (producer, port); -1 if unwired.
  int edge_out_of(int64_t producer, int port) const;

  /// True when edge `edge_index` is single-producer/single-consumer:
  /// exactly one producer output port feeds it and exactly one
  /// consumer input port drains it. Under the thread-per-operator
  /// executor such an edge sees exactly one pushing and one popping
  /// thread, which makes it eligible for the lock-free SPSC ring
  /// transport (PlanRuntime tags eligible edges at wiring time).
  /// Fan-in operators (UnionOp / ShardMerge) still qualify per-edge —
  /// each of their input ports owns its own Connection; only a
  /// Connection shared by several producer ports (a true
  /// multi-producer inbox, which Connect cannot currently express)
  /// is excluded and must keep the mutex-deque transport.
  bool EdgeSpscEligible(int edge_index) const;

  /// Multi-line plan rendering for logs/tests.
  std::string ToString() const;

 private:
  std::vector<std::unique_ptr<Operator>> ops_;
  std::vector<PlanEdge> edges_;
  std::vector<int64_t> topo_order_;
  bool finalized_ = false;
};

}  // namespace nstream

#endif  // NSTREAM_EXEC_QUERY_PLAN_H_
