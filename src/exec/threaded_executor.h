// ThreadedExecutor: NiagaraST's execution architecture — each operator
// runs as its own thread, connected by paged data queues (downstream)
// and control channels (upstream). Operators sleep on a per-operator
// wake object and are awakened when a data page or control message
// arrives (§5, "Operator Control"). Control messages are drained before
// pending data pages.
//
// This executor demonstrates the mechanism under genuine concurrency;
// deterministic experiments use SyncExecutor / SimExecutor.

#ifndef NSTREAM_EXEC_THREADED_EXECUTOR_H_
#define NSTREAM_EXEC_THREADED_EXECUTOR_H_

#include "common/status.h"
#include "exec/query_plan.h"
#include "stream/data_queue.h"

namespace nstream {

// ChargePolicy (what ExecContext::ChargeMs does under real threads)
// lives in exec/exec_context.h — the pooled scheduler shares it.

struct ThreadedExecutorOptions {
  DataQueueOptions queue{/*page_size=*/128, /*max_pages=*/64};
  ChargePolicy charge_policy = ChargePolicy::kIgnore;
  // When true, each source sleeps so elements enter the engine at
  // NextArrivalMs() * pace_scale wall milliseconds from start.
  bool pace_sources = false;
  double pace_scale = 1.0;
  // Pages an operator may drain per input between control-channel
  // re-checks. 1 reproduces the classic loop (tightest feedback
  // latency); raising it amortizes wake/sleep churn for fan-in and
  // fan-out operators (ShardMerge over many shard inputs, Exchange
  // feeding many shard queues) at the cost of checking feedback less
  // often. Control is always drained before the next data batch.
  int max_pages_per_wake = 1;
  // Use the lock-free SPSC ring transport on every edge the plan
  // proves single-producer/single-consumer (all of them, under
  // thread-per-operator). The mutex deque remains available for A/B
  // measurement (bench_queue) and as a hedge while the ring is young.
  bool use_spsc_rings = true;
};

class ThreadedExecutor {
 public:
  explicit ThreadedExecutor(ThreadedExecutorOptions options = {})
      : options_(options) {}

  /// Spawn one thread per operator, run to completion, join.
  Status Run(QueryPlan* plan);

 private:
  ThreadedExecutorOptions options_;
};

}  // namespace nstream

#endif  // NSTREAM_EXEC_THREADED_EXECUTOR_H_
