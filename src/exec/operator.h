// Operator: the unit of query processing. NiagaraST runs each operator
// as a thread connected by inter-operator queues; here operators are
// passive event handlers (ProcessTuple / ProcessPunctuation /
// ProcessControl / ...) and the executor owns scheduling, so the same
// operator code runs under all three executors.
//
// Feedback roles (§3.5): an operator may be a feedback *producer*
// (calls EmitFeedback), an *exploiter* (overrides ProcessFeedback to
// guard/purge/prioritize), and/or a *relayer* (maps received feedback
// to its input schema(s) and forwards it). The default ProcessFeedback
// ignores feedback — a feedback-unaware operator, exactly the paper's
// fallback behaviour.

#ifndef NSTREAM_EXEC_OPERATOR_H_
#define NSTREAM_EXEC_OPERATOR_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "exec/exec_context.h"
#include "punct/feedback.h"
#include "stream/element.h"
#include "stream/page.h"
#include "types/schema.h"

namespace nstream {

class SnapshotReader;
class SnapshotWriter;

/// Per-operator counters; the currency of the experimental harness.
struct OperatorStats {
  uint64_t tuples_in = 0;
  uint64_t tuples_out = 0;
  uint64_t puncts_in = 0;
  uint64_t puncts_out = 0;
  uint64_t feedback_received = 0;
  uint64_t feedback_sent = 0;       // originated here
  uint64_t feedback_propagated = 0; // relayed upstream
  uint64_t feedback_ignored = 0;    // received but not exploitable
  uint64_t input_guard_drops = 0;   // tuples dropped by an input guard
  uint64_t output_guard_drops = 0;  // results suppressed by output guard
  uint64_t state_purged = 0;        // state entries removed via feedback
  uint64_t work_avoided = 0;        // expensive units skipped (IMPUTE etc.)
};

class Operator {
 public:
  Operator(std::string name, int num_inputs, int num_outputs);
  virtual ~Operator() = default;

  Operator(const Operator&) = delete;
  Operator& operator=(const Operator&) = delete;

  // ---- Identity & shape ----
  int64_t id() const { return id_; }
  void set_id(int64_t id) { id_ = id; }
  const std::string& name() const { return name_; }
  int num_inputs() const { return num_inputs_; }
  int num_outputs() const { return num_outputs_; }
  bool is_source() const { return num_inputs_ == 0; }
  bool is_sink() const { return num_outputs_ == 0; }

  // ---- Schemas ----
  /// Called by QueryPlan::Finalize in topological order.
  Status SetInputSchema(int port, SchemaPtr schema);
  const SchemaPtr& input_schema(int port) const {
    return input_schemas_[static_cast<size_t>(port)];
  }
  const SchemaPtr& output_schema(int port) const {
    return output_schemas_[static_cast<size_t>(port)];
  }
  /// Derive output schema(s) from input schema(s). Default: single
  /// output copies input 0 (filter-style); sources must pre-set theirs.
  virtual Status InferSchemas();

  // ---- Lifecycle (invoked by executors) ----
  virtual Status Open(ExecContext* ctx);
  virtual Status ProcessTuple(int port, const Tuple& tuple) = 0;
  /// Process an entire popped page with one virtual dispatch. The
  /// default walks the elements and routes them to ProcessTuple /
  /// ProcessPunctuation / ProcessEos (charging tuples_in); stateless
  /// operators override it with a tight batch loop. `tick` (may be
  /// null) is an executor logical-clock counter incremented once per
  /// element, exactly as the old per-element dispatch advanced it.
  virtual Status ProcessPage(int port, Page&& page, TimeMs* tick);
  /// Embedded punctuation arrived on `port`. Default: forward to all
  /// outputs unchanged when input/output schemas match, else drop.
  virtual Status ProcessPunctuation(int port, const Punctuation& punct);
  /// End of stream on `port`. Default bookkeeping: when every input has
  /// ended, calls OnAllInputsEos.
  Status ProcessEos(int port);
  /// All inputs exhausted. Default: emit EOS on every output. Stateful
  /// operators override to flush remaining state first (then call the
  /// base implementation).
  virtual Status OnAllInputsEos();
  virtual Status Close();

  // ---- Upstream control path ----
  /// Control message arrived from the consumer on output `out_port`.
  /// Dispatches feedback to ProcessFeedback; shutdown is latched and
  /// forwarded to all inputs.
  virtual Status ProcessControl(int out_port, const ControlMessage& msg);
  /// Feedback punctuation received (§3.5). Default: feedback-unaware —
  /// count and ignore.
  virtual Status ProcessFeedback(int out_port,
                                 const FeedbackPunctuation& feedback);

  // ---- Durability (checkpoint/recovery) ----
  /// Serialize this operator's state into `w` at a punctuation-aligned
  /// quiescent point (no slice is running, all in-flight work drained
  /// to the barrier). The base implementation captures the EOS
  /// bookkeeping every operator carries; stateful overrides call it
  /// FIRST, then append their own state. Non-const: serialization may
  /// normalize internal representations (e.g. materializing a staged
  /// columnar page's row layout), never observable changes.
  ///
  /// Canonicalization contract: state kept in unordered containers
  /// must be written in a deterministic order (sort by key or by
  /// serialized bytes), so snapshot(restore(snapshot(x))) ==
  /// snapshot(x) byte-for-byte — the round-trip equality the recovery
  /// tests lean on.
  virtual Status SnapshotState(SnapshotWriter* w);
  /// Inverse of SnapshotState, called on a freshly constructed +
  /// Open()ed operator before any element is processed. Overrides call
  /// the base FIRST, mirroring the write order.
  virtual Status RestoreState(SnapshotReader* r);

  // ---- Scheduler placement ----
  /// Pooled-scheduler placement hint: tasks whose operators share a
  /// non-negative affinity key are pinned to the same worker (key mod
  /// pool size), giving shard-parallel subplans cache locality and a
  /// stable worker per SPSC queue side. -1 (default) means "any
  /// worker". Purely advisory — correctness never depends on it (the
  /// single-consumer guarantee comes from task identity, not worker
  /// identity).
  int scheduler_affinity() const { return scheduler_affinity_; }
  void set_scheduler_affinity(int key) { scheduler_affinity_ = key; }

  bool shutdown_requested() const { return shutdown_requested_; }
  bool eos_seen(int port) const {
    return eos_seen_[static_cast<size_t>(port)];
  }
  bool finished() const { return finished_; }

  const OperatorStats& stats() const { return stats_; }
  OperatorStats* mutable_stats() { return &stats_; }

 protected:
  ExecContext* ctx() const { return ctx_; }
  void SetOutputSchema(int port, SchemaPtr schema) {
    output_schemas_[static_cast<size_t>(port)] = std::move(schema);
  }

  /// Shared paged-filter skeleton for single-output filters (Select's
  /// predicate, Pace's lateness policy): run `keep` over the run of
  /// leading tuples, compact survivors IN PLACE, and forward the page
  /// itself to output 0 — arena and all, zero copies. A mixed page
  /// detaches the remainder and PROMOTES its tuples before the page
  /// is emitted, because the page (and the arena owning their
  /// payloads) may be consumed and freed by a downstream thread ahead
  /// of the tail; the tail then walks element-wise. Punctuation / EOS
  /// can only trail the tuples of a queue-built page (punctuation
  /// flushes its page), so order is preserved even for hand-built
  /// mixed pages. `keep` owns all per-tuple stats except tuples_in,
  /// which is charged here.
  template <typename Keep>
  Status FilterPageInPlace(int port, Page&& page, TimeMs* tick,
                           Keep&& keep) {
    if (page.is_columnar()) {
      // Columnar pages filter by SELECTION VECTOR: survivors are
      // recorded as row indices, nothing is moved or compacted. The
      // predicate sees each row through a reused scratch tuple whose
      // slots are flat Value aliases into the columns. Columnar pages
      // are tuples-only, so there is no punctuation tail to split off.
      ColumnarBlock* b = page.columnar();
      Tuple scratch = b->MakeRowScratch();
      b->KeepIf([&](uint32_t r) {
        if (tick) ++*tick;
        ++stats_.tuples_in;
        b->FillRow(r, &scratch);
        return static_cast<bool>(keep(scratch));
      });
      if (!page.empty()) EmitPage(0, std::move(page));
      return Status::OK();
    }
    std::vector<StreamElement>& elems = page.mutable_elements();
    size_t kept = 0;
    size_t i = 0;
    for (; i < elems.size() && elems[i].is_tuple(); ++i) {
      if (tick) ++*tick;
      ++stats_.tuples_in;
      if (!keep(elems[i].tuple())) continue;
      if (kept != i) elems[kept] = std::move(elems[i]);
      ++kept;
    }
    if (i == elems.size()) {
      // Pure-tuple page (the common case): truncate and forward.
      elems.resize(kept);
      if (!page.empty()) EmitPage(0, std::move(page));
      return Status::OK();
    }
    std::vector<StreamElement> rest;
    rest.reserve(elems.size() - i);
    for (size_t j = i; j < elems.size(); ++j) {
      if (elems[j].is_tuple()) elems[j].mutable_tuple().Promote();
      rest.push_back(std::move(elems[j]));
    }
    elems.resize(kept);
    if (!page.empty()) EmitPage(0, std::move(page));
    for (StreamElement& e : rest) {
      if (tick) ++*tick;
      if (e.is_tuple()) {
        ++stats_.tuples_in;
        if (keep(e.tuple())) Emit(0, std::move(e.mutable_tuple()));
      } else if (e.is_punct()) {
        NSTREAM_RETURN_NOT_OK(ProcessPunctuation(port, e.punct()));
      } else {
        NSTREAM_RETURN_NOT_OK(ProcessEos(port));
      }
    }
    return Status::OK();
  }

  // Emission helpers that keep stats in sync.
  void Emit(int out_port, Tuple t) {
    ++stats_.tuples_out;
    ctx_->EmitTuple(out_port, std::move(t));
  }
  void EmitPunct(int out_port, Punctuation p) {
    ++stats_.puncts_out;
    ctx_->EmitPunct(out_port, std::move(p));
  }
  /// Emit a pre-assembled all-tuple page in one call (one queue lock per
  /// page under queue-backed executors). See ExecContext::EmitPage.
  void EmitPage(int out_port, Page&& page) {
    stats_.tuples_out += page.size();
    ctx_->EmitPage(out_port, std::move(page));
  }
  void SendFeedback(int in_port, FeedbackPunctuation fb) {
    ++stats_.feedback_sent;
    fb.set_origin_op(id_);
    fb.set_issued_at_ms(ctx_->NowMs());
    ctx_->EmitFeedback(in_port, std::move(fb));
  }
  void RelayFeedback(int in_port, FeedbackPunctuation fb) {
    ++stats_.feedback_propagated;
    fb.set_hop_count(fb.hop_count() + 1);
    ctx_->EmitFeedback(in_port, std::move(fb));
  }

  OperatorStats stats_;

 private:
  std::string name_;
  int num_inputs_;
  int num_outputs_;
  int64_t id_ = -1;
  ExecContext* ctx_ = nullptr;
  std::vector<SchemaPtr> input_schemas_;
  std::vector<SchemaPtr> output_schemas_;
  std::vector<bool> eos_seen_;
  int eos_count_ = 0;
  int scheduler_affinity_ = -1;
  bool finished_ = false;
  bool shutdown_requested_ = false;
};

/// The canonical page walk: route each element to ProcessTuple /
/// ProcessPunctuation / ProcessEos, charging tuples_in and advancing
/// the executor tick per element. `Operator::ProcessPage` calls it
/// with dynamic dispatch; a `final` operator may call it on its own
/// concrete type from a ProcessPage override to devirtualize and
/// inline the per-element calls (CollectorSink does) — one walk, two
/// dispatch flavors, no duplicated element handling.
template <typename Op>
Status WalkPageElements(Op* op, OperatorStats* stats, int port,
                        Page&& page, TimeMs* tick) {
  if (page.is_columnar()) {
    // Columnar pages walk in place through a reused scratch row (flat
    // Value aliases into the columns) — no per-row span allocation,
    // no StreamElement materialization. The scratch is only valid for
    // the duration of each ProcessTuple call, which is exactly the
    // contract a row-page walk gives (elements die with the page);
    // consumers that retain tuples copy them, and a copy promotes the
    // aliases to self-contained values. Columnar pages are
    // tuples-only, so there is no punctuation/EOS dispatch here.
    const ColumnarBlock* b = page.columnar();
    Tuple scratch = b->MakeRowScratch();
    const uint32_t n = b->size();
    for (uint32_t i = 0; i < n; ++i) {
      if (tick) ++*tick;
      ++stats->tuples_in;
      b->FillRow(b->row_at(i), &scratch);
      NSTREAM_RETURN_NOT_OK(op->ProcessTuple(port, scratch));
    }
    return Status::OK();
  }
  for (StreamElement& e : page.mutable_elements()) {
    if (tick) ++*tick;
    switch (e.kind()) {
      case ElementKind::kTuple:
        ++stats->tuples_in;
        NSTREAM_RETURN_NOT_OK(op->ProcessTuple(port, e.tuple()));
        break;
      case ElementKind::kPunctuation:
        NSTREAM_RETURN_NOT_OK(op->ProcessPunctuation(port, e.punct()));
        break;
      case ElementKind::kEndOfStream:
        NSTREAM_RETURN_NOT_OK(op->ProcessEos(port));
        break;
    }
  }
  return Status::OK();
}

/// Readiness of a source, as seen by an executor's produce loop.
/// Pre-materialized sources (VectorSource) only ever report kReady or
/// kExhausted; an external-input source (ingest) adds the third state:
/// open but momentarily empty, which must NOT end the stream.
enum class SourcePoll : uint8_t {
  kReady = 0,  // an element is available; call ProduceNext
  kIdle,       // open but nothing to produce NOW — park until a wake
  kExhausted,  // stream over: emit EOS and finish the source
};

/// A source operator generates the stream. `NextArrivalMs` exposes the
/// (system-time) instant the next element becomes available, letting
/// the SimExecutor schedule arrivals and the ThreadedExecutor pace them
/// in real time if asked to.
class SourceOperator : public Operator {
 public:
  SourceOperator(std::string name, int num_outputs = 1)
      : Operator(std::move(name), /*num_inputs=*/0, num_outputs) {}

  /// System time of the next element, or nullopt when exhausted.
  virtual std::optional<TimeMs> NextArrivalMs() = 0;
  /// Emit the element(s) due at NextArrivalMs via ctx().
  virtual Status ProduceNext() = 0;

  /// Readiness check the executors drive the produce loop with. The
  /// default derives it from NextArrivalMs — exactly the historical
  /// contract (a value = ready, nullopt = exhausted) — so existing
  /// sources are untouched. External-input sources override this to
  /// report kIdle while the connection is open but drained.
  virtual SourcePoll Poll() {
    return NextArrivalMs().has_value() ? SourcePoll::kReady
                                       : SourcePoll::kExhausted;
  }

  /// Executors that can park an idle source install a wake callback
  /// here; the source (or its transport) invokes it — possibly from a
  /// producer thread — when new input arrives, re-scheduling the
  /// produce loop. Default: dropped; sources that never report kIdle
  /// have no one to wake.
  virtual void SetWakeNotifier(std::function<void()> fn) { (void)fn; }

  Status ProcessTuple(int, const Tuple&) final {
    return Status::FailedPrecondition("source has no inputs");
  }
};

}  // namespace nstream

#endif  // NSTREAM_EXEC_OPERATOR_H_
