// ExecContext: the executor-provided handle through which an operator
// interacts with the runtime — emitting tuples/punctuation downstream,
// emitting feedback/control upstream, reading the system clock, and
// charging processing cost (virtual time under the SimExecutor).
//
// Operators are written once against this interface and run unchanged
// under the synchronous, discrete-event, and thread-per-operator
// executors.

#ifndef NSTREAM_EXEC_EXEC_CONTEXT_H_
#define NSTREAM_EXEC_EXEC_CONTEXT_H_

#include "common/clock.h"
#include "punct/feedback.h"
#include "punct/punct_pattern.h"
#include "stream/control_channel.h"
#include "stream/page.h"
#include "types/tuple.h"

namespace nstream {

/// What ExecContext::ChargeMs does under executors that model cost in
/// real time (threaded / pooled). The SimExecutor has its own
/// virtual-time accounting and ignores this knob; the pooled
/// scheduler's manual mode maps ChargeMs onto a VirtualClock instead.
enum class ChargePolicy : uint8_t {
  kIgnore = 0,  // cost accounting is a no-op (real CPU time rules)
  kSleep,       // sleep for the charged duration (models blocking I/O,
                // e.g. IMPUTE's per-tuple database query)
  kSpin,        // busy-spin for the charged duration (models CPU work)
};

class ExecContext {
 public:
  virtual ~ExecContext() = default;

  // ---- Downstream (with the data) ----
  virtual void EmitTuple(int out_port, Tuple t) = 0;
  virtual void EmitPunct(int out_port, Punctuation p) = 0;
  virtual void EmitEos(int out_port) = 0;
  /// Emit a whole pre-assembled page of tuples in one call. Queue-backed
  /// executors override this with DataQueue::PushPage (one lock per page
  /// instead of one per tuple); the default decomposes into per-element
  /// emissions, so operators may use it unconditionally. The page must
  /// contain only tuples — punctuation/EOS keep their dedicated paths.
  virtual void EmitPage(int out_port, Page&& page) {
    page.EnsureRowLayout();  // per-element decomposition needs rows
    for (StreamElement& e : page.mutable_elements()) {
      EmitTuple(out_port, std::move(e.mutable_tuple()));
    }
  }
  /// True when this executor moves data in pages and operators should
  /// stage bursts of results for EmitPage rather than emitting tuple by
  /// tuple. The SimExecutor returns false: it models per-element timing
  /// and batched emission would distort its virtual-time dynamics.
  virtual bool PagedEmissionPreferred() const { return false; }
  /// Arena backing the open output page of `out_port`, so per-tuple
  /// emitters can build results in place (zero heap allocations per
  /// tuple; payloads are freed wholesale when the consumer drops the
  /// page). Null whenever the executor, transport, or global arena
  /// switch cannot provide one — callers must treat null as "build an
  /// owned tuple" (Tuple's arena constructor and Value::StringIn both
  /// accept null for exactly this). A tuple built from the returned
  /// arena must be passed to EmitTuple on the SAME port before any
  /// other emission on that port.
  virtual TupleArena* OpenPageArena(int out_port) {
    (void)out_port;
    return nullptr;
  }

  // ---- Upstream (against the data; out-of-band) ----
  /// Send feedback punctuation to the producer feeding input `in_port`.
  virtual void EmitFeedback(int in_port, FeedbackPunctuation fb) = 0;
  /// Send a raw control message upstream (shutdown, result request).
  virtual void EmitControl(int in_port, ControlMessage msg) = 0;

  // ---- Time & cost ----
  /// Current system time (virtual under SimExecutor, wall otherwise).
  virtual TimeMs NowMs() const = 0;
  /// Account `cost_ms` of processing time for the current event. Under
  /// the SimExecutor this advances the operator's busy-horizon; other
  /// executors ignore it (their cost is real CPU time).
  virtual void ChargeMs(double cost_ms) = 0;

  // ---- Exploitation hooks into pending input ----
  /// Drop tuples matching `pattern` that are buffered on input
  /// `in_port` but not yet delivered (IMPUTE purging late tuples,
  /// Experiment 1). Returns the number of tuples removed. Punctuation
  /// ordering is preserved: removal never reorders elements.
  virtual int PurgeInput(int in_port, const PunctPattern& pattern) {
    (void)in_port;
    (void)pattern;
    return 0;
  }
  /// Move buffered tuples matching `pattern` ahead of non-matching
  /// ones on input `in_port` (desired-punctuation prioritization).
  /// Tuples never cross punctuation boundaries. Returns #promoted.
  virtual int PrioritizeInput(int in_port, const PunctPattern& pattern) {
    (void)in_port;
    (void)pattern;
    return 0;
  }
};

}  // namespace nstream

#endif  // NSTREAM_EXEC_EXEC_CONTEXT_H_
