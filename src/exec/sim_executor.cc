#include "exec/sim_executor.h"

#include <cmath>
#include <deque>
#include <queue>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "exec/exec_context.h"
#include "stream/element.h"

namespace nstream {

class SimExecutor::Impl {
 public:
  explicit Impl(SimExecutorOptions options) : options_(options) {}

  Status Run(QueryPlan* plan);

  double now() const { return now_; }
  uint64_t events() const { return events_; }

 private:
  enum class EventKind : uint8_t {
    kSourceProduce,
    kDeliver,   // data element arrives at (op, in port)
    kControl,   // control message arrives at (op, out port)
    kOpFree,    // operator finished its current unit of work
  };

  struct Event {
    double time = 0;
    uint64_t seq = 0;  // FIFO tie-break for determinism
    EventKind kind = EventKind::kOpFree;
    int64_t op = -1;
    int port = 0;
    StreamElement element;
    ControlMessage control;
  };

  struct EventAfter {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  struct OpState {
    // Merged FIFO of pending input elements (port, element).
    std::deque<std::pair<int, StreamElement>> buffer;
    double busy_until = 0;
    bool free_scheduled = false;
    bool source_done = false;
  };

  class SimContext;

  void Schedule(Event e) {
    e.seq = next_seq_++;
    heap_.push(std::move(e));
  }

  void ScheduleDeliver(int64_t op, int port, StreamElement el,
                       double time) {
    Event e;
    e.time = time;
    e.kind = EventKind::kDeliver;
    e.op = op;
    e.port = port;
    e.element = std::move(el);
    Schedule(std::move(e));
  }

  Status FireSourceProduce(int64_t op_id);
  Status FireDeliver(Event* e);
  Status FireControl(Event* e);
  Status FireOpFree(int64_t op_id);

  // Start buffered work if the operator is idle, or make sure an
  // OpFree event exists to resume it later.
  Status TryStart(int64_t op_id);
  // Pop and process the front buffered element; assumes idle.
  Status ProcessNext(int64_t op_id);
  // Invoke `fn` as op's handler at time `start` with base cost
  // `base_cost_ms`; route buffered emissions; optionally occupy the
  // operator (extend busy_until).
  Status RunHandler(int64_t op_id, double start, double base_cost_ms,
                    bool occupies, const std::function<Status()>& fn);

  SimExecutorOptions options_;
  QueryPlan* plan_ = nullptr;
  std::priority_queue<Event, std::vector<Event>, EventAfter> heap_;
  std::vector<OpState> states_;
  std::unique_ptr<SimContext> ctx_;
  double now_ = 0;
  uint64_t next_seq_ = 0;
  uint64_t events_ = 0;

  friend class SimContext;
};

// Context shared by all operators; `current_op_` switches per handler.
class SimExecutor::Impl::SimContext final : public ExecContext {
 public:
  explicit SimContext(Impl* impl) : impl_(impl) {}

  void EmitTuple(int out_port, Tuple t) override {
    if (t.arrival_ms() < 0) {
      t.set_arrival_ms(static_cast<TimeMs>(std::llround(impl_->now_)));
    }
    emissions_.push_back({out_port, StreamElement::OfTuple(std::move(t))});
  }
  void EmitPunct(int out_port, Punctuation p) override {
    emissions_.push_back({out_port, StreamElement::OfPunct(std::move(p))});
  }
  void EmitEos(int out_port) override {
    emissions_.push_back({out_port, StreamElement::Eos()});
  }
  void EmitFeedback(int in_port, FeedbackPunctuation fb) override {
    control_out_.push_back(
        {in_port, ControlMessage::Feedback(std::move(fb))});
  }
  void EmitControl(int in_port, ControlMessage msg) override {
    control_out_.push_back({in_port, std::move(msg)});
  }
  TimeMs NowMs() const override {
    return static_cast<TimeMs>(std::llround(impl_->now_));
  }
  void ChargeMs(double cost_ms) override {
    if (cost_ms > 0) charged_ms_ += cost_ms;
  }

  int PurgeInput(int in_port, const PunctPattern& pattern) override {
    auto& buf = impl_->states_[static_cast<size_t>(current_op_)].buffer;
    int removed = 0;
    std::deque<std::pair<int, StreamElement>> kept;
    for (auto& pe : buf) {
      if (pe.first == in_port && pe.second.is_tuple() &&
          pattern.Matches(pe.second.tuple())) {
        ++removed;
      } else {
        kept.push_back(std::move(pe));
      }
    }
    buf = std::move(kept);
    return removed;
  }

  int PrioritizeInput(int in_port, const PunctPattern& pattern) override {
    auto& buf = impl_->states_[static_cast<size_t>(current_op_)].buffer;
    // Stable reorder, never moving a tuple across a punctuation or EOS
    // of the same port (punctuation semantics must survive).
    std::deque<std::pair<int, StreamElement>> out;
    std::vector<std::pair<int, StreamElement>> match, rest;
    int moved = 0;
    auto flush_segment = [&]() {
      if (!match.empty() && !rest.empty()) {
        moved += static_cast<int>(match.size());
      }
      for (auto& e : match) out.push_back(std::move(e));
      for (auto& e : rest) out.push_back(std::move(e));
      match.clear();
      rest.clear();
    };
    for (auto& pe : buf) {
      bool barrier = pe.first == in_port && !pe.second.is_tuple();
      if (barrier) {
        flush_segment();
        out.push_back(std::move(pe));
      } else if (pe.first == in_port && pe.second.is_tuple() &&
                 pattern.Matches(pe.second.tuple())) {
        match.push_back(std::move(pe));
      } else {
        rest.push_back(std::move(pe));
      }
    }
    flush_segment();
    buf = std::move(out);
    return moved;
  }

  // --- harness side ---
  void Begin(int64_t op) {
    current_op_ = op;
    charged_ms_ = 0;
    emissions_.clear();
    control_out_.clear();
  }
  double charged_ms() const { return charged_ms_; }

  struct Emission {
    int out_port;
    StreamElement element;
  };
  struct ControlOut {
    int in_port;
    ControlMessage msg;
  };
  std::vector<Emission>& emissions() { return emissions_; }
  std::vector<ControlOut>& control_out() { return control_out_; }

 private:
  Impl* impl_;
  int64_t current_op_ = -1;
  double charged_ms_ = 0;
  std::vector<Emission> emissions_;
  std::vector<ControlOut> control_out_;
};

Status SimExecutor::Impl::RunHandler(int64_t op_id, double start,
                                     double base_cost_ms, bool occupies,
                                     const std::function<Status()>& fn) {
  ctx_->Begin(op_id);
  NSTREAM_RETURN_NOT_OK(fn());
  double completion = start + base_cost_ms + ctx_->charged_ms();
  OpState& st = states_[static_cast<size_t>(op_id)];
  if (occupies) {
    st.busy_until = completion;
  }
  // Data emissions become visible downstream at completion.
  for (auto& em : ctx_->emissions()) {
    int edge = plan_->edge_out_of(op_id, em.out_port);
    NSTREAM_CHECK(edge >= 0) << "emission on unwired port";
    const PlanEdge& pe = plan_->edges()[static_cast<size_t>(edge)];
    ScheduleDeliver(pe.consumer, pe.consumer_port, std::move(em.element),
                    completion + options_.transfer_latency_ms);
  }
  // Control emissions travel upstream out-of-band.
  for (auto& cm : ctx_->control_out()) {
    int edge = plan_->edge_into(op_id, cm.in_port);
    NSTREAM_CHECK(edge >= 0) << "control on unwired input";
    const PlanEdge& pe = plan_->edges()[static_cast<size_t>(edge)];
    Event e;
    e.time = completion + options_.control_latency_ms;
    e.kind = EventKind::kControl;
    e.op = pe.producer;
    e.port = pe.producer_port;
    e.control = std::move(cm.msg);
    Schedule(std::move(e));
  }
  if (occupies) {
    Event e;
    e.time = completion;
    e.kind = EventKind::kOpFree;
    e.op = op_id;
    Schedule(std::move(e));
    st.free_scheduled = true;
  }
  return Status::OK();
}

Status SimExecutor::Impl::FireSourceProduce(int64_t op_id) {
  auto* src = static_cast<SourceOperator*>(plan_->op(op_id));
  OpState& st = states_[static_cast<size_t>(op_id)];
  if (st.source_done) return Status::OK();
  std::optional<TimeMs> next = src->NextArrivalMs();
  if (src->shutdown_requested() || !next.has_value()) {
    st.source_done = true;
    return RunHandler(op_id, now_, 0.0, /*occupies=*/false, [&]() {
      for (int p = 0; p < src->num_outputs(); ++p) ctx_->EmitEos(p);
      return Status::OK();
    });
  }
  NSTREAM_RETURN_NOT_OK(RunHandler(op_id, now_, 0.0, /*occupies=*/false,
                                   [&]() { return src->ProduceNext(); }));
  std::optional<TimeMs> after = src->NextArrivalMs();
  Event e;
  e.kind = EventKind::kSourceProduce;
  e.op = op_id;
  if (after.has_value() && !src->shutdown_requested()) {
    e.time = std::max(now_, static_cast<double>(*after));
  } else {
    e.time = now_;  // fire once more to emit EOS
  }
  Schedule(std::move(e));
  return Status::OK();
}

Status SimExecutor::Impl::FireDeliver(Event* e) {
  OpState& st = states_[static_cast<size_t>(e->op)];
  st.buffer.emplace_back(e->port, std::move(e->element));
  return TryStart(e->op);
}

Status SimExecutor::Impl::FireControl(Event* e) {
  // Control is out-of-band and high-priority: it acts on the operator
  // immediately, ahead of all buffered data, and does not occupy the
  // operator's processing resource (metadata-only work).
  Operator* op = plan_->op(e->op);
  return RunHandler(e->op, now_, options_.cost.PunctCostMs(),
                    /*occupies=*/false, [&]() {
                      return op->ProcessControl(e->port, e->control);
                    });
}

Status SimExecutor::Impl::TryStart(int64_t op_id) {
  OpState& st = states_[static_cast<size_t>(op_id)];
  if (st.free_scheduled || st.buffer.empty()) return Status::OK();
  if (st.busy_until > now_) {
    Event e;
    e.time = st.busy_until;
    e.kind = EventKind::kOpFree;
    e.op = op_id;
    Schedule(std::move(e));
    st.free_scheduled = true;
    return Status::OK();
  }
  return ProcessNext(op_id);
}

Status SimExecutor::Impl::ProcessNext(int64_t op_id) {
  OpState& st = states_[static_cast<size_t>(op_id)];
  NSTREAM_DCHECK(!st.buffer.empty());
  auto [port, element] = std::move(st.buffer.front());
  st.buffer.pop_front();
  Operator* op = plan_->op(op_id);
  switch (element.kind()) {
    case ElementKind::kTuple: {
      ++op->mutable_stats()->tuples_in;
      double cost = options_.cost.TupleCostMs(op_id);
      Tuple t = std::move(element.mutable_tuple());
      return RunHandler(op_id, now_, cost, /*occupies=*/true, [&]() {
        return op->ProcessTuple(port, t);
      });
    }
    case ElementKind::kPunctuation: {
      Punctuation p = element.punct();
      return RunHandler(op_id, now_, options_.cost.PunctCostMs(),
                        /*occupies=*/true, [&]() {
                          return op->ProcessPunctuation(port, p);
                        });
    }
    case ElementKind::kEndOfStream:
      return RunHandler(op_id, now_, options_.cost.PunctCostMs(),
                        /*occupies=*/true,
                        [&]() { return op->ProcessEos(port); });
  }
  return Status::Internal("unknown element kind");
}

Status SimExecutor::Impl::FireOpFree(int64_t op_id) {
  OpState& st = states_[static_cast<size_t>(op_id)];
  st.free_scheduled = false;
  if (st.buffer.empty()) return Status::OK();
  if (st.busy_until > now_) {
    // A control handler may have re-armed us; re-schedule.
    Event e;
    e.time = st.busy_until;
    e.kind = EventKind::kOpFree;
    e.op = op_id;
    Schedule(std::move(e));
    st.free_scheduled = true;
    return Status::OK();
  }
  return ProcessNext(op_id);
}

Status SimExecutor::Impl::Run(QueryPlan* plan) {
  if (!plan->finalized()) {
    NSTREAM_RETURN_NOT_OK(plan->Finalize());
  }
  plan_ = plan;
  now_ = options_.start_ms;
  states_.assign(static_cast<size_t>(plan->num_operators()), OpState{});
  ctx_ = std::make_unique<SimContext>(this);

  for (int64_t id = 0; id < plan->num_operators(); ++id) {
    NSTREAM_RETURN_NOT_OK(plan->op(id)->Open(ctx_.get()));
  }
  for (int64_t id = 0; id < plan->num_operators(); ++id) {
    Operator* op = plan->op(id);
    if (!op->is_source()) continue;
    auto* src = static_cast<SourceOperator*>(op);
    Event e;
    e.kind = EventKind::kSourceProduce;
    e.op = id;
    std::optional<TimeMs> first = src->NextArrivalMs();
    e.time = first.has_value()
                 ? std::max(now_, static_cast<double>(*first))
                 : now_;
    Schedule(std::move(e));
  }

  while (!heap_.empty()) {
    if (++events_ > options_.max_events) {
      return Status::ResourceExhausted("SimExecutor exceeded max_events");
    }
    Event e = heap_.top();
    heap_.pop();
    NSTREAM_DCHECK(e.time >= now_ - 1e-9);
    if (e.time > now_) now_ = e.time;
    switch (e.kind) {
      case EventKind::kSourceProduce:
        NSTREAM_RETURN_NOT_OK(FireSourceProduce(e.op));
        break;
      case EventKind::kDeliver:
        NSTREAM_RETURN_NOT_OK(FireDeliver(&e));
        break;
      case EventKind::kControl:
        NSTREAM_RETURN_NOT_OK(FireControl(&e));
        break;
      case EventKind::kOpFree:
        NSTREAM_RETURN_NOT_OK(FireOpFree(e.op));
        break;
    }
  }

  for (int64_t id = 0; id < plan->num_operators(); ++id) {
    const OpState& st = states_[static_cast<size_t>(id)];
    if (!st.buffer.empty()) {
      return Status::Internal("SimExecutor finished with buffered input at " +
                              plan->op(id)->name());
    }
  }
  for (int64_t id = 0; id < plan->num_operators(); ++id) {
    NSTREAM_RETURN_NOT_OK(plan->op(id)->Close());
  }
  return Status::OK();
}

SimExecutor::SimExecutor(SimExecutorOptions options)
    : impl_(std::make_unique<Impl>(options)) {}

SimExecutor::~SimExecutor() = default;

Status SimExecutor::Run(QueryPlan* plan) { return impl_->Run(plan); }

double SimExecutor::now_ms() const { return impl_->now(); }

uint64_t SimExecutor::events_processed() const { return impl_->events(); }

}  // namespace nstream
