#include "exec/operator.h"

#include <utility>

#include "common/logging.h"
#include "common/string_util.h"
#include "recovery/snapshot.h"

namespace nstream {

Operator::Operator(std::string name, int num_inputs, int num_outputs)
    : name_(std::move(name)),
      num_inputs_(num_inputs),
      num_outputs_(num_outputs),
      input_schemas_(static_cast<size_t>(num_inputs)),
      output_schemas_(static_cast<size_t>(num_outputs)),
      eos_seen_(static_cast<size_t>(num_inputs), false) {}

Status Operator::SetInputSchema(int port, SchemaPtr schema) {
  if (port < 0 || port >= num_inputs_) {
    return Status::OutOfRange(
        StringPrintf("%s: input port %d out of range (%d inputs)",
                     name_.c_str(), port, num_inputs_));
  }
  input_schemas_[static_cast<size_t>(port)] = std::move(schema);
  return Status::OK();
}

Status Operator::InferSchemas() {
  // Filter-style default: one input, outputs mirror input 0.
  if (num_inputs_ >= 1 && input_schemas_[0] != nullptr) {
    for (int o = 0; o < num_outputs_; ++o) {
      if (output_schemas_[static_cast<size_t>(o)] == nullptr) {
        output_schemas_[static_cast<size_t>(o)] = input_schemas_[0];
      }
    }
    return Status::OK();
  }
  for (int o = 0; o < num_outputs_; ++o) {
    if (output_schemas_[static_cast<size_t>(o)] == nullptr) {
      return Status::FailedPrecondition(
          name_ + ": output schema not set and not inferable");
    }
  }
  return Status::OK();
}

Status Operator::Open(ExecContext* ctx) {
  ctx_ = ctx;
  return Status::OK();
}

Status Operator::ProcessPage(int port, Page&& page, TimeMs* tick) {
  return WalkPageElements(this, &stats_, port, std::move(page), tick);
}

Status Operator::ProcessPunctuation(int port, const Punctuation& punct) {
  ++stats_.puncts_in;
  // Pass-through is only sound when schemas line up; otherwise the
  // operator must translate (stateful operators override this).
  const SchemaPtr& in = input_schemas_[static_cast<size_t>(port)];
  for (int o = 0; o < num_outputs_; ++o) {
    const SchemaPtr& out = output_schemas_[static_cast<size_t>(o)];
    if (in != nullptr && out != nullptr && in->Equals(*out)) {
      EmitPunct(o, punct);
    }
  }
  return Status::OK();
}

Status Operator::ProcessEos(int port) {
  if (port < 0 || port >= num_inputs_) {
    return Status::OutOfRange(name_ + ": EOS on bad port");
  }
  if (!eos_seen_[static_cast<size_t>(port)]) {
    eos_seen_[static_cast<size_t>(port)] = true;
    ++eos_count_;
  }
  if (eos_count_ == num_inputs_ && !finished_) {
    finished_ = true;
    return OnAllInputsEos();
  }
  return Status::OK();
}

Status Operator::OnAllInputsEos() {
  for (int o = 0; o < num_outputs_; ++o) {
    ctx_->EmitEos(o);
  }
  return Status::OK();
}

Status Operator::Close() { return Status::OK(); }

Status Operator::SnapshotState(SnapshotWriter* w) {
  // EOS bookkeeping — the base-class state every operator carries.
  // finished_ is implied by eos_count_ == num_inputs_ for non-sources,
  // but sources (no inputs) track it independently, so it is stored.
  w->WriteU32(static_cast<uint32_t>(num_inputs_));
  for (int p = 0; p < num_inputs_; ++p) {
    w->WriteBool(eos_seen_[static_cast<size_t>(p)]);
  }
  w->WriteBool(finished_);
  return Status::OK();
}

Status Operator::RestoreState(SnapshotReader* r) {
  uint32_t n = 0;
  NSTREAM_RETURN_NOT_OK(r->ReadU32(&n));
  if (n != static_cast<uint32_t>(num_inputs_)) {
    return Status::InvalidArgument(
        name_ + ": snapshot has " + std::to_string(n) +
        " inputs, operator has " + std::to_string(num_inputs_));
  }
  eos_count_ = 0;
  for (int p = 0; p < num_inputs_; ++p) {
    bool seen = false;
    NSTREAM_RETURN_NOT_OK(r->ReadBool(&seen));
    eos_seen_[static_cast<size_t>(p)] = seen;
    if (seen) ++eos_count_;
  }
  NSTREAM_RETURN_NOT_OK(r->ReadBool(&finished_));
  return Status::OK();
}

Status Operator::ProcessControl(int out_port, const ControlMessage& msg) {
  switch (msg.type) {
    case ControlType::kFeedback:
      ++stats_.feedback_received;
      return ProcessFeedback(out_port, msg.feedback);
    case ControlType::kShutdown:
      shutdown_requested_ = true;
      // Shutdown propagates all the way to the sources.
      for (int i = 0; i < num_inputs_; ++i) {
        ctx_->EmitControl(i, ControlMessage::Shutdown());
      }
      return Status::OK();
    case ControlType::kRequestResult:
      // Default: relay the poll upstream (Example 4, on-demand results).
      for (int i = 0; i < num_inputs_; ++i) {
        ctx_->EmitControl(i, ControlMessage::RequestResult());
      }
      return Status::OK();
  }
  return Status::Internal("unknown control type");
}

Status Operator::ProcessFeedback(int out_port,
                                 const FeedbackPunctuation& feedback) {
  // Feedback-unaware default (§5): ignore, do not propagate.
  (void)out_port;
  (void)feedback;
  ++stats_.feedback_ignored;
  return Status::OK();
}

}  // namespace nstream
