#include "exec/runtime.h"

namespace nstream {

Result<std::unique_ptr<PlanRuntime>> PlanRuntime::Create(
    QueryPlan* plan, const DataQueueOptions& queue_options,
    EdgeTransportPolicy policy) {
  if (!plan->finalized()) {
    return Status::FailedPrecondition(
        "PlanRuntime requires a finalized plan");
  }
  auto rt = std::make_unique<PlanRuntime>();
  rt->plan_ = plan;
  size_t n = static_cast<size_t>(plan->num_operators());
  rt->inputs_.resize(n);
  rt->outputs_.resize(n);
  for (size_t i = 0; i < n; ++i) {
    const Operator* o = plan->op(static_cast<int64_t>(i));
    rt->inputs_[i].resize(static_cast<size_t>(o->num_inputs()), nullptr);
    rt->outputs_[i].resize(static_cast<size_t>(o->num_outputs()),
                           nullptr);
  }
  int edge_index = 0;
  for (const PlanEdge& e : plan->edges()) {
    DataQueueOptions opts = queue_options;
    if (policy == EdgeTransportPolicy::kSpscWhereEligible &&
        plan->EdgeSpscEligible(edge_index)) {
      opts.transport = DataQueueTransport::kSpscRing;
    } else if (policy == EdgeTransportPolicy::kSpscChainSingleThread) {
      opts.transport = DataQueueTransport::kSpscChain;
      opts.assume_single_thread = true;
    } else if (policy == EdgeTransportPolicy::kSpscChainWhereEligible) {
      // Pooled scheduler: every push must be non-blocking (see the
      // policy comment in runtime.h), so eligible edges get the
      // unbounded chain and the mutex-deque fallback is forced
      // unbounded too.
      opts.max_pages = 0;
      if (plan->EdgeSpscEligible(edge_index)) {
        opts.transport = DataQueueTransport::kSpscChain;
      }
    }
    ++edge_index;
    auto conn = std::make_unique<Connection>(opts);
    conn->producer_op = e.producer;
    conn->producer_port = e.producer_port;
    conn->consumer_op = e.consumer;
    conn->consumer_port = e.consumer_port;
    Connection* raw = conn.get();
    rt->connections_.push_back(std::move(conn));
    rt->outputs_[static_cast<size_t>(e.producer)]
                [static_cast<size_t>(e.producer_port)] = raw;
    rt->inputs_[static_cast<size_t>(e.consumer)]
               [static_cast<size_t>(e.consumer_port)] = raw;
  }
  return rt;
}

}  // namespace nstream
