// CostModel: per-operator processing costs for the discrete-event
// SimExecutor. The paper's Experiment 1 hinges on a cost asymmetry —
// IMPUTE issues a database query per dirty tuple while clean tuples are
// nearly free — so costs are experiment configuration, not operator
// code. Operators may additionally charge explicit cost via
// ExecContext::ChargeMs (e.g. IMPUTE's archival lookup).

#ifndef NSTREAM_EXEC_COST_MODEL_H_
#define NSTREAM_EXEC_COST_MODEL_H_

#include <cstdint>
#include <unordered_map>

namespace nstream {

class CostModel {
 public:
  CostModel() = default;
  explicit CostModel(double default_tuple_cost_ms)
      : default_tuple_cost_ms_(default_tuple_cost_ms) {}

  /// Base per-tuple processing cost for operator `op_id`.
  double TupleCostMs(int64_t op_id) const {
    auto it = per_op_ms_.find(op_id);
    return it == per_op_ms_.end() ? default_tuple_cost_ms_ : it->second;
  }

  /// Punctuation / control processing cost (cheap metadata).
  double PunctCostMs() const { return punct_cost_ms_; }

  CostModel& SetDefaultTupleCostMs(double ms) {
    default_tuple_cost_ms_ = ms;
    return *this;
  }
  CostModel& SetOpTupleCostMs(int64_t op_id, double ms) {
    per_op_ms_[op_id] = ms;
    return *this;
  }
  CostModel& SetPunctCostMs(double ms) {
    punct_cost_ms_ = ms;
    return *this;
  }

 private:
  double default_tuple_cost_ms_ = 0.01;
  double punct_cost_ms_ = 0.001;
  std::unordered_map<int64_t, double> per_op_ms_;
};

}  // namespace nstream

#endif  // NSTREAM_EXEC_COST_MODEL_H_
