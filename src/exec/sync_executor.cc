#include "exec/sync_executor.h"

#include <vector>

#include "common/logging.h"

namespace nstream {
namespace {

class SyncContext final : public ExecContext {
 public:
  SyncContext(PlanRuntime* rt, int64_t op_id, TimeMs* now)
      : rt_(rt), op_id_(op_id), now_(now) {}

  void EmitTuple(int out_port, Tuple t) override {
    if (t.arrival_ms() < 0) t.set_arrival_ms(*now_);
    rt_->output_conn(op_id_, out_port)->data->PushTuple(std::move(t));
  }
  void EmitPunct(int out_port, Punctuation p) override {
    rt_->output_conn(op_id_, out_port)
        ->data->PushPunctuation(std::move(p));
  }
  void EmitEos(int out_port) override {
    rt_->output_conn(op_id_, out_port)->data->PushEos();
  }
  void EmitPage(int out_port, Page&& page) override {
    if (page.is_columnar()) {
      ColumnarBlock* b = page.columnar();
      TimeMs* arr = b->mutable_arrivals();
      for (uint32_t i = 0, n = b->rows(); i < n; ++i) {
        if (arr[i] < 0) arr[i] = *now_;
      }
    } else {
      for (StreamElement& e : page.mutable_elements()) {
        if (e.mutable_tuple().arrival_ms() < 0) {
          e.mutable_tuple().set_arrival_ms(*now_);
        }
      }
    }
    rt_->output_conn(op_id_, out_port)->data->PushPage(std::move(page));
  }
  bool PagedEmissionPreferred() const override { return true; }
  TupleArena* OpenPageArena(int out_port) override {
    return rt_->output_conn(op_id_, out_port)->data->OpenPageArena();
  }
  void EmitFeedback(int in_port, FeedbackPunctuation fb) override {
    rt_->input_conn(op_id_, in_port)
        ->control->Push(ControlMessage::Feedback(std::move(fb)));
  }
  void EmitControl(int in_port, ControlMessage msg) override {
    rt_->input_conn(op_id_, in_port)->control->Push(std::move(msg));
  }
  TimeMs NowMs() const override { return *now_; }
  void ChargeMs(double) override {}  // cost is real CPU time here
  int PurgeInput(int in_port, const PunctPattern& pattern) override {
    return rt_->input_conn(op_id_, in_port)
        ->data->PurgeMatching(pattern);
  }
  int PrioritizeInput(int in_port, const PunctPattern& pattern) override {
    return rt_->input_conn(op_id_, in_port)
        ->data->PromoteMatching(pattern);
  }

 private:
  PlanRuntime* rt_;
  int64_t op_id_;
  TimeMs* now_;
};

}  // namespace

Status SyncExecutor::Run(QueryPlan* plan) {
  if (!plan->finalized()) {
    NSTREAM_RETURN_NOT_OK(plan->Finalize());
  }
  DataQueueOptions queue_options = options_.queue;
  EdgeTransportPolicy policy = EdgeTransportPolicy::kMutexDeque;
  if (options_.use_growable_rings &&
      queue_options.transport == DataQueueTransport::kMutexDeque) {
    // Everything runs on this one thread, so every edge is trivially
    // SPSC and the unbounded chain replaces the mutex deque. A caller
    // who pinned an explicit transport in options_.queue keeps it.
    policy = EdgeTransportPolicy::kSpscChainSingleThread;
  }
  NSTREAM_ASSIGN_OR_RETURN(
      std::unique_ptr<PlanRuntime> rt,
      PlanRuntime::Create(plan, queue_options, policy));

  const int n = plan->num_operators();
  std::vector<std::unique_ptr<SyncContext>> contexts;
  contexts.reserve(static_cast<size_t>(n));
  for (int64_t id = 0; id < n; ++id) {
    contexts.push_back(
        std::make_unique<SyncContext>(rt.get(), id, &now_ms_));
    NSTREAM_RETURN_NOT_OK(plan->op(id)->Open(contexts.back().get()));
  }

  std::vector<bool> source_done(static_cast<size_t>(n), false);
  int stalled = 0;

  auto all_drained = [&]() {
    for (int64_t id = 0; id < n; ++id) {
      if (plan->op(id)->is_source() &&
          !source_done[static_cast<size_t>(id)]) {
        return false;
      }
    }
    for (const auto& conn : rt->connections()) {
      if (!conn->data->Drained()) return false;
    }
    return true;
  };

  while (true) {
    bool progress = false;
    for (int64_t id : plan->topo_order()) {
      Operator* op = plan->op(id);

      // 1. Control messages are high priority: drain before data (§5).
      for (int p = 0; p < op->num_outputs(); ++p) {
        ControlChannel* ch = rt->output_conn(id, p)->control.get();
        while (auto msg = ch->TryPop()) {
          ++now_ms_;
          NSTREAM_RETURN_NOT_OK(op->ProcessControl(p, *msg));
          progress = true;
        }
      }

      // 2. Sources produce a bounded batch per round.
      if (op->is_source() && !source_done[static_cast<size_t>(id)]) {
        auto* src = static_cast<SourceOperator*>(op);
        for (int k = 0; k < options_.source_batch; ++k) {
          const SourcePoll poll = src->Poll();
          if (src->shutdown_requested() ||
              poll == SourcePoll::kExhausted) {
            for (int p = 0; p < op->num_outputs(); ++p) {
              contexts[static_cast<size_t>(id)]->EmitEos(p);
            }
            source_done[static_cast<size_t>(id)] = true;
            progress = true;
            break;
          }
          // Open but drained: no progress from this source this round.
          // Single-threaded, nothing can feed it mid-run, so a source
          // that stays idle trips the stall valve below instead of
          // silently truncating the stream.
          if (poll == SourcePoll::kIdle) break;
          ++now_ms_;
          NSTREAM_RETURN_NOT_OK(src->ProduceNext());
          progress = true;
        }
      }

      // 3. Deliver at most one data page per input port per round,
      // handing the whole page to the operator in one call.
      for (int p = 0; p < op->num_inputs(); ++p) {
        DataQueue* q = rt->input_conn(id, p)->data.get();
        std::optional<Page> page = q->TryPopPage();
        if (!page) continue;
        progress = true;
        NSTREAM_RETURN_NOT_OK(
            op->ProcessPage(p, std::move(*page), &now_ms_));
      }
    }

    if (!progress) {
      if (all_drained()) break;
      // Maybe tuples are stranded in partially-filled pages: force a
      // flush and retry before declaring a stall.
      for (const auto& conn : rt->connections()) conn->data->Flush();
      if (++stalled > options_.max_stalled_rounds) {
        return Status::Internal(
            "SyncExecutor stalled: no progress but plan not drained");
      }
    } else {
      stalled = 0;
    }
  }

  for (int64_t id = 0; id < n; ++id) {
    NSTREAM_RETURN_NOT_OK(plan->op(id)->Close());
  }
  return Status::OK();
}

}  // namespace nstream
