// SyncExecutor: single-threaded, deterministic, page-at-a-time
// round-robin execution. The workhorse for unit/integration tests and
// for wall-clock benchmarks (Experiment 2), where savings come from
// actually skipping real work.
//
// Scheduling follows NiagaraST's priority rule: an operator always
// drains its control channels (feedback) before touching pending data
// pages. Because data sits in queues between rounds, feedback still
// races against in-flight pages — the effect §4.1 calls out — which
// makes this executor a faithful, if sequential, model.

#ifndef NSTREAM_EXEC_SYNC_EXECUTOR_H_
#define NSTREAM_EXEC_SYNC_EXECUTOR_H_

#include <memory>

#include "common/clock.h"
#include "common/status.h"
#include "exec/query_plan.h"
#include "exec/runtime.h"

namespace nstream {

struct SyncExecutorOptions {
  DataQueueOptions queue;
  // Source elements produced per scheduling round, per source. Small
  // values interleave sources finely; large values batch.
  int source_batch = 64;
  // Safety valve: abort after this many rounds without progress.
  int max_stalled_rounds = 3;
  // Move every edge onto the unbounded lock-free SPSC chain transport
  // (stream/spsc_chain.h) — one thread trivially satisfies the SPSC
  // contract, pushes never block (the round-robin scheduler must not
  // park), and the mutex disappears from the per-page hop. Off = the
  // original mutex deque, kept for A/B measurement.
  bool use_growable_rings = true;
};

class SyncExecutor {
 public:
  explicit SyncExecutor(SyncExecutorOptions options = {})
      : options_(options) {}

  /// Run the plan to completion (all sources exhausted, all queues
  /// drained, all operators EOS). The plan must be finalized.
  Status Run(QueryPlan* plan);

  /// System time seen by operators: a monotone event counter (ms are
  /// meaningless under synchronous execution but ordering is real).
  TimeMs now_ms() const { return now_ms_; }

 private:
  SyncExecutorOptions options_;
  TimeMs now_ms_ = 0;
};

}  // namespace nstream

#endif  // NSTREAM_EXEC_SYNC_EXECUTOR_H_
