// PlanRuntime: the materialized connections (data queue + control
// channel per edge) for a finalized QueryPlan, with per-operator
// input/output lookup tables. Shared by all executors.

#ifndef NSTREAM_EXEC_RUNTIME_H_
#define NSTREAM_EXEC_RUNTIME_H_

#include <memory>
#include <vector>

#include "common/status.h"
#include "exec/query_plan.h"
#include "stream/connection.h"

namespace nstream {

/// How PlanRuntime::Create picks each edge's DataQueue transport.
enum class EdgeTransportPolicy : uint8_t {
  // Every edge uses the mutex deque — any threading, unbounded queues
  // allowed. The single-threaded executors use this.
  kMutexDeque = 0,
  // Edges the plan proves single-producer/single-consumer
  // (QueryPlan::EdgeSpscEligible) get the lock-free SPSC ring; the
  // rest keep the mutex deque. The thread-per-operator executor uses
  // this: it pushes from exactly the producer's thread and pops from
  // exactly the consumer's.
  kSpscWhereEligible,
  // Every edge uses the unbounded lock-free SPSC chain
  // (stream/spsc_chain.h). Only sound when ALL pushes and pops happen
  // on one thread (then every edge is trivially SPSC regardless of
  // plan shape); the single-threaded executors use this and also set
  // DataQueueOptions::assume_single_thread for deque-equivalent
  // purge/promote surgery.
  kSpscChainSingleThread,
  // SPSC-eligible edges get the unbounded lock-free SPSC chain with
  // full cross-thread semantics (assume_single_thread stays false);
  // the rest keep the mutex deque, forced unbounded. The pooled
  // scheduler uses this: its fixed worker pool must never park a
  // worker on producer-side backpressure (a blocked producer slice
  // could starve the very consumer task that would drain the queue —
  // guaranteed deadlock at pool size 1), so every transport it uses
  // must have non-blocking pushes. The SPSC contract holds because
  // each queue side is pinned to one *task*, tasks run on at most one
  // worker at a time, and task handoff between workers goes through
  // the scheduler mutex (release/acquire orders the plain fields).
  kSpscChainWhereEligible,
};

class PlanRuntime {
 public:
  /// Build one Connection per plan edge, tagging each edge's queue
  /// transport per `policy`.
  static Result<std::unique_ptr<PlanRuntime>> Create(
      QueryPlan* plan, const DataQueueOptions& queue_options,
      EdgeTransportPolicy policy = EdgeTransportPolicy::kMutexDeque);

  QueryPlan* plan() { return plan_; }

  /// Connection feeding input `port` of operator `id` (never null for a
  /// finalized plan).
  Connection* input_conn(int64_t id, int port) {
    return inputs_[static_cast<size_t>(id)][static_cast<size_t>(port)];
  }
  /// Connection leaving output `port` of operator `id`.
  Connection* output_conn(int64_t id, int port) {
    return outputs_[static_cast<size_t>(id)][static_cast<size_t>(port)];
  }

  const std::vector<std::unique_ptr<Connection>>& connections() const {
    return connections_;
  }

 private:
  QueryPlan* plan_ = nullptr;
  std::vector<std::unique_ptr<Connection>> connections_;
  // Indexed [op][port].
  std::vector<std::vector<Connection*>> inputs_;
  std::vector<std::vector<Connection*>> outputs_;
};

}  // namespace nstream

#endif  // NSTREAM_EXEC_RUNTIME_H_
