// PlanRuntime: the materialized connections (data queue + control
// channel per edge) for a finalized QueryPlan, with per-operator
// input/output lookup tables. Shared by all executors.

#ifndef NSTREAM_EXEC_RUNTIME_H_
#define NSTREAM_EXEC_RUNTIME_H_

#include <memory>
#include <vector>

#include "common/status.h"
#include "exec/query_plan.h"
#include "stream/connection.h"

namespace nstream {

/// How PlanRuntime::Create picks each edge's DataQueue transport.
enum class EdgeTransportPolicy : uint8_t {
  // Every edge uses the mutex deque — any threading, unbounded queues
  // allowed. The single-threaded executors use this.
  kMutexDeque = 0,
  // Edges the plan proves single-producer/single-consumer
  // (QueryPlan::EdgeSpscEligible) get the lock-free SPSC ring; the
  // rest keep the mutex deque. The thread-per-operator executor uses
  // this: it pushes from exactly the producer's thread and pops from
  // exactly the consumer's.
  kSpscWhereEligible,
  // Every edge uses the unbounded lock-free SPSC chain
  // (stream/spsc_chain.h). Only sound when ALL pushes and pops happen
  // on one thread (then every edge is trivially SPSC regardless of
  // plan shape); the single-threaded executors use this and also set
  // DataQueueOptions::assume_single_thread for deque-equivalent
  // purge/promote surgery.
  kSpscChainSingleThread,
};

class PlanRuntime {
 public:
  /// Build one Connection per plan edge, tagging each edge's queue
  /// transport per `policy`.
  static Result<std::unique_ptr<PlanRuntime>> Create(
      QueryPlan* plan, const DataQueueOptions& queue_options,
      EdgeTransportPolicy policy = EdgeTransportPolicy::kMutexDeque);

  QueryPlan* plan() { return plan_; }

  /// Connection feeding input `port` of operator `id` (never null for a
  /// finalized plan).
  Connection* input_conn(int64_t id, int port) {
    return inputs_[static_cast<size_t>(id)][static_cast<size_t>(port)];
  }
  /// Connection leaving output `port` of operator `id`.
  Connection* output_conn(int64_t id, int port) {
    return outputs_[static_cast<size_t>(id)][static_cast<size_t>(port)];
  }

  const std::vector<std::unique_ptr<Connection>>& connections() const {
    return connections_;
  }

 private:
  QueryPlan* plan_ = nullptr;
  std::vector<std::unique_ptr<Connection>> connections_;
  // Indexed [op][port].
  std::vector<std::vector<Connection*>> inputs_;
  std::vector<std::vector<Connection*>> outputs_;
};

}  // namespace nstream

#endif  // NSTREAM_EXEC_RUNTIME_H_
