// PlanRuntime: the materialized connections (data queue + control
// channel per edge) for a finalized QueryPlan, with per-operator
// input/output lookup tables. Shared by all executors.

#ifndef NSTREAM_EXEC_RUNTIME_H_
#define NSTREAM_EXEC_RUNTIME_H_

#include <memory>
#include <vector>

#include "common/status.h"
#include "exec/query_plan.h"
#include "stream/connection.h"

namespace nstream {

class PlanRuntime {
 public:
  /// Build one Connection per plan edge.
  static Result<std::unique_ptr<PlanRuntime>> Create(
      QueryPlan* plan, const DataQueueOptions& queue_options);

  QueryPlan* plan() { return plan_; }

  /// Connection feeding input `port` of operator `id` (never null for a
  /// finalized plan).
  Connection* input_conn(int64_t id, int port) {
    return inputs_[static_cast<size_t>(id)][static_cast<size_t>(port)];
  }
  /// Connection leaving output `port` of operator `id`.
  Connection* output_conn(int64_t id, int port) {
    return outputs_[static_cast<size_t>(id)][static_cast<size_t>(port)];
  }

  const std::vector<std::unique_ptr<Connection>>& connections() const {
    return connections_;
  }

 private:
  QueryPlan* plan_ = nullptr;
  std::vector<std::unique_ptr<Connection>> connections_;
  // Indexed [op][port].
  std::vector<std::vector<Connection*>> inputs_;
  std::vector<std::vector<Connection*>> outputs_;
};

}  // namespace nstream

#endif  // NSTREAM_EXEC_RUNTIME_H_
