#include "exec/scheduler.h"

#include <algorithm>
#include <chrono>
#include <cstddef>
#include <sstream>
#include <utility>

#include "common/logging.h"
#include "exec/exec_context.h"
#include "recovery/recover.h"
#include "stream/data_queue.h"

namespace nstream {

const char* TaskStateName(TaskState s) {
  switch (s) {
    case TaskState::kQueued:
      return "QUEUED";
    case TaskState::kRunning:
      return "RUNNING";
    case TaskState::kWaiting:
      return "WAITING";
    case TaskState::kKilled:
      return "KILLED";
  }
  return "?";
}

namespace {

/// ExecContext for one (query, operator) task. Identical data paths to
/// ThreadedContext, but clocked by the scheduler's Clock (wall or
/// virtual) and, under a virtual clock, mapping ChargeMs onto clock
/// advancement instead of sleeping — deterministic cost accounting.
class PooledContext final : public ExecContext {
 public:
  PooledContext(PlanRuntime* rt, int64_t op_id, const Clock* clock,
                VirtualClock* virtual_clock, ChargePolicy charge_policy)
      : rt_(rt),
        op_id_(op_id),
        clock_(clock),
        virtual_clock_(virtual_clock),
        charge_policy_(charge_policy) {}

  void EmitTuple(int out_port, Tuple t) override {
    if (t.arrival_ms() < 0) t.set_arrival_ms(clock_->NowMs());
    rt_->output_conn(op_id_, out_port)->data->PushTuple(std::move(t));
  }
  void EmitPunct(int out_port, Punctuation p) override {
    rt_->output_conn(op_id_, out_port)
        ->data->PushPunctuation(std::move(p));
  }
  void EmitEos(int out_port) override {
    rt_->output_conn(op_id_, out_port)->data->PushEos();
  }
  void EmitPage(int out_port, Page&& page) override {
    if (page.is_columnar()) {
      ColumnarBlock* b = page.columnar();
      TimeMs* arr = b->mutable_arrivals();
      const TimeMs now = clock_->NowMs();
      for (uint32_t i = 0, n = b->rows(); i < n; ++i) {
        if (arr[i] < 0) arr[i] = now;
      }
    } else {
      for (StreamElement& e : page.mutable_elements()) {
        if (e.mutable_tuple().arrival_ms() < 0) {
          e.mutable_tuple().set_arrival_ms(clock_->NowMs());
        }
      }
    }
    rt_->output_conn(op_id_, out_port)->data->PushPage(std::move(page));
  }
  bool PagedEmissionPreferred() const override { return true; }
  TupleArena* OpenPageArena(int out_port) override {
    // Producer-local open page: safe because exactly this task ever
    // emits on this port, and a task runs on one worker at a time.
    return rt_->output_conn(op_id_, out_port)->data->OpenPageArena();
  }
  void EmitFeedback(int in_port, FeedbackPunctuation fb) override {
    rt_->input_conn(op_id_, in_port)
        ->control->Push(ControlMessage::Feedback(std::move(fb)));
  }
  void EmitControl(int in_port, ControlMessage msg) override {
    rt_->input_conn(op_id_, in_port)->control->Push(std::move(msg));
  }
  TimeMs NowMs() const override { return clock_->NowMs(); }
  void ChargeMs(double cost_ms) override {
    if (cost_ms <= 0) return;
    if (virtual_clock_ != nullptr) {
      // Virtual time: the cost accrues to the CURRENT SLICE and the
      // scheduler busy-parks the task until now + accrued once the
      // slice ends. Crucially the charge does NOT advance the global
      // clock inline — an operator that spends 4 ms on a tuple is
      // unavailable for 4 ms while everyone else runs at today's
      // instant, which is what makes a charged operator genuinely
      // SLOWER than its free neighbors (the paper's divergence
      // dynamics depend on exactly that). Whole ms accrue; the
      // fractional remainder carries across slices so e.g. 0.25 ms
      // charges still sum exactly. Single-threaded by the manual-mode
      // contract, so no synchronization.
      charge_carry_ += cost_ms;
      const TimeMs whole = static_cast<TimeMs>(charge_carry_);
      if (whole > 0) {
        charge_carry_ -= static_cast<double>(whole);
        slice_charge_ms_ += whole;
      }
      return;
    }
    switch (charge_policy_) {
      case ChargePolicy::kIgnore:
        break;
      case ChargePolicy::kSleep:
        std::this_thread::sleep_for(
            std::chrono::duration<double, std::milli>(cost_ms));
        break;
      case ChargePolicy::kSpin: {
        auto end = std::chrono::steady_clock::now() +
                   std::chrono::duration_cast<
                       std::chrono::steady_clock::duration>(
                       std::chrono::duration<double, std::milli>(cost_ms));
        while (std::chrono::steady_clock::now() < end) {
        }
        break;
      }
    }
  }
  int PurgeInput(int in_port, const PunctPattern& pattern) override {
    return rt_->input_conn(op_id_, in_port)
        ->data->PurgeMatching(pattern);
  }
  int PrioritizeInput(int in_port, const PunctPattern& pattern) override {
    return rt_->input_conn(op_id_, in_port)
        ->data->PromoteMatching(pattern);
  }

  /// Whole ms charged by the slice that just ran; resets the counter.
  TimeMs TakeSliceChargeMs() {
    const TimeMs c = slice_charge_ms_;
    slice_charge_ms_ = 0;
    return c;
  }

 private:
  PlanRuntime* rt_;
  int64_t op_id_;
  const Clock* clock_;
  VirtualClock* virtual_clock_;
  ChargePolicy charge_policy_;
  double charge_carry_ = 0.0;
  TimeMs slice_charge_ms_ = 0;
};

}  // namespace

/// One operator task. All mutable fields are guarded by the scheduler
/// mutex except those only touched by the slice that owns the task
/// while it is RUNNING (source_eos_emitted) — the RUNNING transition
/// itself hands them off under the mutex.
struct Scheduler::Task {
  QueryRun* run = nullptr;
  int64_t op_id = -1;
  uint64_t token = 0;  // consumer-affinity tripwire token (nonzero)
  int affinity = -1;   // pinned worker ring index; -1 = any worker
  TaskState state = TaskState::kWaiting;
  bool wake_pending = false;      // wake arrived while RUNNING
  bool busy = false;  // WAITING because of charged work, not idleness
  bool source_eos_emitted = false;
  TimeMs due_ms = -1;  // >= 0: parked until this instant (pace / busy)
  uint32_t worker_mask = 0;
  Status status;

  // ---- Checkpoint-barrier bookkeeping ----
  // barrier_seen is mutated ONLY under mu_ (hit merges in
  // OnSliceDoneLocked, resets at StartCheckpoint / ServiceCheckpoint);
  // the running slice reads its own snapshot, slice_barrier_seen,
  // copied under mu_ at pop (PrepareSliceLocked) — the same
  // hand-off-at-pop ownership rule as source_eos_emitted.
  std::vector<bool> barrier_seen;        // per input port, current epoch
  std::vector<bool> slice_barrier_seen;  // slice-owned copy of the above
  bool ckpt_parked = false;  // WAITING at the barrier, not idleness
  // Barrier id the running slice acts for; 0 = no checkpoint. A source
  // slice with a nonzero epoch has never emitted this epoch's barrier
  // (it parks immediately after emitting, and a new epoch is only
  // issued after the previous checkpoint finished or aborted).
  int64_t ckpt_epoch = 0;
};

struct Scheduler::QueryRun {
  QueryId id = 0;
  QueryPlan* plan = nullptr;
  std::unique_ptr<PlanRuntime> rt;
  std::vector<std::unique_ptr<PooledContext>> contexts;
  std::vector<std::unique_ptr<Task>> tasks;
  int live = 0;      // tasks not yet KILLED
  bool failed = false;
  bool done = false;
  bool closed = false;  // operators Close()d (by the first Wait)
  Status status;
  TimeMs start_ms = 0;  // pacing origin

  // ---- Active checkpoint (at most one per query) ----
  bool ckpt_active = false;
  // Quiesced and claimed by a serializer; cleared when the snapshot
  // file is published and tasks are unparked.
  bool ckpt_serializing = false;
  int64_t ckpt_barrier_id = 0;
  CheckpointOptions ckpt_opts;
  int ckpt_parked_count = 0;  // tasks parked at the barrier
  bool ckpt_result_ready = false;
  Status ckpt_result;
};

struct Scheduler::SliceResult {
  bool did_work = false;
  bool finished = false;
  TimeMs due_ms = -1;   // >= 0: paced source, park until then
  TimeMs busy_ms = 0;   // virtual ms the slice charged (busy-park)
  // Slice reached its barrier alignment (source: emitted the barrier;
  // other: saw it on every live input and forwarded it) — park until
  // the snapshot is written.
  bool ckpt_parked = false;
  // Barrier punctuations stripped from popped pages: (port, barrier
  // id). Merged into Task::barrier_seen under mu_ at slice end — also
  // catches the pool-mode race where a slice that began before
  // StartCheckpoint (epoch 0) pops a freshly injected barrier.
  std::vector<std::pair<int, int64_t>> barrier_hits;
  Status status;
};

Scheduler::Scheduler(SchedulerOptions options) : options_(options) {
  if (options_.virtual_clock != nullptr) {
    // Virtual time is only coherent when slices are serialized.
    options_.manual = true;
    clock_ = options_.virtual_clock;
  } else {
    clock_ = &wall_clock_;
  }
  if (!options_.manual) {
    const int n = std::max(1, options_.num_workers);
    pinned_.resize(static_cast<size_t>(n));
    workers_.reserve(static_cast<size_t>(n));
    for (int i = 0; i < n; ++i) {
      workers_.emplace_back([this, i] { WorkerLoop(i); });
    }
  }
}

Scheduler::~Scheduler() { Shutdown(); }

void Scheduler::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  done_cv_.notify_all();
  ckpt_cv_.notify_all();
  for (std::thread& w : workers_) {
    if (w.joinable()) w.join();
  }
  workers_.clear();
}

Result<QueryId> Scheduler::Submit(QueryPlan* plan) {
  return SubmitInternal(plan, nullptr);
}

Result<QueryId> Scheduler::SubmitRecovered(QueryPlan* plan,
                                           const std::string& path) {
  return SubmitInternal(plan, &path);
}

Result<QueryId> Scheduler::SubmitInternal(QueryPlan* plan,
                                          const std::string* snapshot_path) {
  if (!plan->finalized()) {
    Status st = plan->Finalize();
    if (!st.ok()) return st;
  }
  DataQueueOptions qopts = options_.queue;
  // Non-blocking pushes are mandatory on a fixed pool (see header).
  qopts.max_pages = 0;
  auto rt_result = PlanRuntime::Create(
      plan, qopts,
      options_.use_lockfree_queues
          ? EdgeTransportPolicy::kSpscChainWhereEligible
          : EdgeTransportPolicy::kMutexDeque);
  if (!rt_result.ok()) return rt_result.status();

  auto run = std::make_unique<QueryRun>();
  run->plan = plan;
  run->rt = rt_result.MoveValue();
  run->start_ms = clock_->NowMs();
  {
    std::lock_guard<std::mutex> lock(mu_);
    run->id = next_query_id_++;
  }
  const int n = plan->num_operators();
  run->live = n;
  for (int64_t id = 0; id < n; ++id) {
    run->contexts.push_back(std::make_unique<PooledContext>(
        run->rt.get(), id, clock_, options_.virtual_clock,
        options_.charge_policy));
    auto task = std::make_unique<Task>();
    task->run = run.get();
    task->op_id = id;
    // Nonzero and unique across (query, op): the tripwire token.
    task->token = (static_cast<uint64_t>(run->id) << 20) ^
                  static_cast<uint64_t>(id + 1);
    task->affinity = plan->op(id)->scheduler_affinity();
    task->barrier_seen.assign(
        static_cast<size_t>(plan->op(id)->num_inputs()), false);
    run->tasks.push_back(std::move(task));
  }

  // Wire wakes and pin consumer affinity. Emissions during Open (and
  // any notifier they fire) are safe here: tasks exist and Wake takes
  // the scheduler mutex, which is not held.
  for (int64_t id = 0; id < n; ++id) {
    Operator* op = plan->op(id);
    Task* task = run->tasks[static_cast<size_t>(id)].get();
    for (int p = 0; p < op->num_inputs(); ++p) {
      Connection* conn = run->rt->input_conn(id, p);
      conn->data->set_consumer_affinity_token(task->token);
      conn->data->SetConsumerNotifier([this, task] { Wake(task); });
    }
    for (int p = 0; p < op->num_outputs(); ++p) {
      run->rt->output_conn(id, p)->control->SetNotifier(
          [this, task] { Wake(task); });
    }
    if (op->is_source()) {
      // External-input sources park when idle (SourcePoll::kIdle);
      // their transport fires this when bytes arrive.
      static_cast<SourceOperator*>(op)->SetWakeNotifier(
          [this, task] { Wake(task); });
    }
  }
  for (int64_t id = 0; id < n; ++id) {
    Status st = plan->op(id)->Open(
        run->contexts[static_cast<size_t>(id)].get());
    if (!st.ok()) return st;
  }

  if (snapshot_path != nullptr) {
    // Recovery: rewind operators to the checkpoint cut and refill the
    // edge queues before any slice runs. Sources resume from their
    // restored offsets; operators already finished at the checkpoint
    // are killed by their first slice (op->finished()).
    Status st = RestorePlanAndQueues(*snapshot_path, plan, run->rt.get());
    if (!st.ok()) return st;
  }

  QueryId qid = run->id;
  {
    std::lock_guard<std::mutex> lock(mu_);
    stats_.tasks_created += static_cast<uint64_t>(n);
    for (auto& task : run->tasks) {
      // A wake during Open may already have queued the task.
      if (task->state == TaskState::kWaiting) EnqueueLocked(task.get());
    }
    runs_.push_back(std::move(run));
  }
  work_cv_.notify_all();
  return qid;
}

void Scheduler::EnqueueLocked(Task* t) {
  t->state = TaskState::kQueued;
  t->due_ms = -1;
  t->busy = false;
  if (!options_.manual && t->affinity >= 0 && !pinned_.empty()) {
    pinned_[static_cast<size_t>(t->affinity) % pinned_.size()]
        .push_back(t);
  } else {
    ready_.push_back(t);
  }
  if (idle_workers_ > 0) work_cv_.notify_all();
}

void Scheduler::WakeLocked(Task* t) {
  switch (t->state) {
    case TaskState::kKilled:
    case TaskState::kQueued:
      ++stats_.wakes_ignored;
      return;
    case TaskState::kRunning:
      // Coalesce: the slice's completion re-enqueues the task, so the
      // event this wake announces is re-checked — never lost.
      t->wake_pending = true;
      ++stats_.wakes_coalesced;
      return;
    case TaskState::kWaiting:
      if (t->busy || t->ckpt_parked) {
        // Busy-parked (virtual time) or parked at a checkpoint
        // barrier: the task cannot react until released. Both
        // releases re-enqueue unconditionally, so the event is not
        // lost.
        t->wake_pending = true;
        ++stats_.wakes_coalesced;
        return;
      }
      ++stats_.wakes_delivered;
      EnqueueLocked(t);
      return;
  }
}

void Scheduler::Wake(Task* t) {
  if (wake_hook_) {
    // Manual mode only (single-threaded): the harness may swallow the
    // wake and re-inject it later to explore reorderings.
    if (wake_hook_(t->run->id, t->op_id)) return;
  }
  std::lock_guard<std::mutex> lock(mu_);
  WakeLocked(t);
}

void Scheduler::KillTaskLocked(Task* t) {
  if (t->state == TaskState::kKilled) return;
  t->state = TaskState::kKilled;
  t->due_ms = -1;
  ++stats_.tasks_killed;
  QueryRun* run = t->run;
  if (--run->live == 0) {
    run->done = true;
    done_cv_.notify_all();
  }
}

void Scheduler::FailRunLocked(QueryRun* run, const Status& status) {
  if (!run->failed) {
    run->failed = true;
    run->status = status;
  }
  // A pending checkpoint can never quiesce once tasks start dying —
  // fail it out so waiters unblock. (ckpt_serializing is impossible
  // here: serialization only starts with every task parked, so no
  // slice is running to fail.)
  AbortCheckpointLocked(run, status);
  // Kill everything not currently running; RUNNING tasks die at their
  // own OnSliceDoneLocked (they observe run->failed). Only THIS
  // query's tasks are touched: sibling queries sharing the pool keep
  // their tasks, queues, and ready-set entries untouched.
  for (auto& task : run->tasks) {
    if (task->state == TaskState::kQueued ||
        task->state == TaskState::kWaiting) {
      KillTaskLocked(task.get());
    }
  }
}

void Scheduler::AbortCheckpointLocked(QueryRun* run, const Status& status) {
  if (!run->ckpt_active || run->ckpt_serializing) return;
  run->ckpt_active = false;
  run->ckpt_parked_count = 0;
  run->ckpt_result = status.ok()
                         ? Status::Cancelled("query failed mid-checkpoint")
                         : status;
  run->ckpt_result_ready = true;
  for (auto& task : run->tasks) task->ckpt_parked = false;
  ckpt_cv_.notify_all();
}

Scheduler::SliceResult Scheduler::RunSlice(Task* t) {
  SliceResult r = RunSliceBody(t);
  if (options_.virtual_clock != nullptr) {
    r.busy_ms = t->run->contexts[static_cast<size_t>(t->op_id)]
                    ->TakeSliceChargeMs();
  }
  return r;
}

Scheduler::SliceResult Scheduler::RunSliceBody(Task* t) {
  SliceResult r;
  QueryRun* run = t->run;
  Operator* op = run->plan->op(t->op_id);
  PooledContext* ctx =
      run->contexts[static_cast<size_t>(t->op_id)].get();
  PlanRuntime* rt = run->rt.get();

  // 1. Control messages first — they are high priority (§5).
  for (int p = 0; p < op->num_outputs(); ++p) {
    ControlChannel* ch = rt->output_conn(t->op_id, p)->control.get();
    while (auto msg = ch->TryPop()) {
      r.status = op->ProcessControl(p, *msg);
      if (!r.status.ok()) return r;
      r.did_work = true;
    }
  }

  // 2. Sources produce a bounded batch (their drain budget).
  if (op->is_source()) {
    if (t->ckpt_epoch != 0) {
      // Checkpoint cut: inject the barrier on every output and park —
      // BEFORE the exhaustion check, so a drained-but-live source
      // still aligns the cut instead of finishing mid-checkpoint.
      // (This epoch's barrier cannot have been emitted yet: the source
      // parks right here and only wakes once the checkpoint is over.)
      for (int p = 0; p < op->num_outputs(); ++p) {
        rt->output_conn(t->op_id, p)->data->PushPunctuation(
            Punctuation::Barrier(t->ckpt_epoch));
      }
      r.ckpt_parked = true;
      return r;
    }
    if (t->source_eos_emitted) {
      r.finished = true;
      return r;
    }
    auto* src = static_cast<SourceOperator*>(op);
    const int batch = std::max(1, options_.source_batch_per_slice);
    for (int i = 0; i < batch; ++i) {
      const SourcePoll poll = src->Poll();
      if (src->shutdown_requested() || poll == SourcePoll::kExhausted) {
        for (int p = 0; p < op->num_outputs(); ++p) ctx->EmitEos(p);
        t->source_eos_emitted = true;
        r.finished = true;
        return r;
      }
      if (poll == SourcePoll::kIdle) {
        // Open but drained: end the slice without finishing the
        // source. With no due time and no did_work the task parks
        // WAITING; the source's wake notifier (wired at submit)
        // re-enqueues it when input arrives — a wake racing this
        // slice is caught by the wake_pending requeue.
        return r;
      }
      if (options_.pace_sources) {
        std::optional<TimeMs> next = src->NextArrivalMs();
        const TimeMs due =
            run->start_ms +
            static_cast<TimeMs>(static_cast<double>(next.value_or(0)) *
                                options_.pace_scale);
        if (due > clock_->NowMs()) {
          r.due_ms = due;  // park until the arrival is due
          return r;
        }
      }
      r.status = src->ProduceNext();
      if (!r.status.ok()) return r;
      r.did_work = true;
    }
    return r;  // budget exhausted; did_work re-enqueues
  }

  // 3. Drain up to max_pages_per_wake pages per input — one batch
  // call per page — then end the slice (control is re-checked next
  // slice).
  const int nin = op->num_inputs();
  // Ports whose barrier arrived during THIS slice (sized only while a
  // checkpoint is active — the hot no-checkpoint path allocates
  // nothing).
  std::vector<bool> hit_now(
      t->ckpt_epoch != 0 ? static_cast<size_t>(nin) : 0, false);
  const int budget = std::max(1, options_.max_pages_per_wake);
  for (int round = 0; round < budget && !op->finished(); ++round) {
    bool popped_any = false;
    for (int p = 0; p < nin; ++p) {
      if (t->ckpt_epoch != 0 &&
          (t->slice_barrier_seen[static_cast<size_t>(p)] ||
           hit_now[static_cast<size_t>(p)])) {
        // Aligned port: everything behind it belongs to the next
        // epoch; it stays queued for the snapshot.
        continue;
      }
      DataQueue* q = rt->input_conn(t->op_id, p)->data.get();
      std::optional<Page> page = q->TryPopPage();
      if (!page) continue;
      popped_any = r.did_work = true;
      // A barrier punctuation flushes its page, so it can only be the
      // last element (columnar pages are tuples-only). Strip it —
      // operators never see barriers — and record the hit; the
      // remainder of the page is pre-cut data, processed normally.
      if (!page->is_columnar() && !page->empty()) {
        const StreamElement& last = page->elements().back();
        if (last.is_punct() && last.punct().is_barrier()) {
          const int64_t id = last.punct().barrier_id();
          r.barrier_hits.emplace_back(p, id);
          if (id == t->ckpt_epoch && !hit_now.empty()) {
            hit_now[static_cast<size_t>(p)] = true;
          }
          page->mutable_elements().pop_back();
        }
      }
      if (page->empty()) continue;
      r.status = op->ProcessPage(p, std::move(*page), nullptr);
      if (!r.status.ok()) return r;
    }
    if (!popped_any) break;
  }
  if (op->finished()) {
    r.finished = true;  // all inputs hit EOS
    return r;
  }
  if (t->ckpt_epoch != 0) {
    // Aligned on every live input (EOS ports are trivially aligned —
    // their producers are gone)? Forward the barrier and park; sinks
    // (no outputs) just park.
    bool aligned = true;
    for (int p = 0; p < nin; ++p) {
      if (!t->slice_barrier_seen[static_cast<size_t>(p)] &&
          !hit_now[static_cast<size_t>(p)] && !op->eos_seen(p)) {
        aligned = false;
        break;
      }
    }
    if (aligned) {
      for (int o = 0; o < op->num_outputs(); ++o) {
        rt->output_conn(t->op_id, o)->data->PushPunctuation(
            Punctuation::Barrier(t->ckpt_epoch));
      }
      r.ckpt_parked = true;
    }
  }
  return r;
}

void Scheduler::OnSliceDoneLocked(Task* t, const SliceResult& r,
                                  int worker) {
  ++stats_.slices;
  if (worker >= 0 && worker < 32) {
    t->worker_mask |= (1u << static_cast<uint32_t>(worker));
  }
  QueryRun* run = t->run;
  // Merge the slice's barrier observations (recorded lock-free) into
  // the task. Hits from a superseded epoch — an aborted checkpoint's
  // stale barrier swallowed later — are dropped by the id match.
  if (!r.barrier_hits.empty() && run->ckpt_active) {
    for (const auto& hit : r.barrier_hits) {
      if (hit.second == run->ckpt_barrier_id && hit.first >= 0 &&
          static_cast<size_t>(hit.first) < t->barrier_seen.size()) {
        t->barrier_seen[static_cast<size_t>(hit.first)] = true;
      }
    }
  }
  if (!r.status.ok()) {
    t->status = r.status;
    FailRunLocked(t->run, r.status);
    KillTaskLocked(t);
    return;
  }
  if (t->run->failed || r.finished) {
    KillTaskLocked(t);
    return;
  }
  if (r.ckpt_parked) {
    if (run->ckpt_active && !run->ckpt_serializing &&
        t->ckpt_epoch == run->ckpt_barrier_id) {
      // Parked at the barrier until the snapshot is written. Pending
      // wakes stay flagged; the unpark re-enqueues unconditionally.
      // A virtual-time busy charge is subsumed by the (longer) park.
      t->state = TaskState::kWaiting;
      t->busy = false;
      t->due_ms = -1;
      t->ckpt_parked = true;
      ++run->ckpt_parked_count;
      return;
    }
    // The checkpoint this slice parked for is gone (aborted while the
    // slice ran) — resume normal scheduling; the emitted barrier is
    // swallowed downstream as a stale hit.
    EnqueueLocked(t);
    return;
  }
  if (r.busy_ms > 0) {
    // Virtual time: the slice charged processing cost, so the task is
    // busy — unavailable — until that cost has elapsed. Pending wakes
    // stay flagged and fold into the unconditional release enqueue.
    t->state = TaskState::kWaiting;
    t->busy = true;
    const TimeMs until = clock_->NowMs() + r.busy_ms;
    t->due_ms = (r.due_ms > until) ? r.due_ms : until;
    return;
  }
  if (t->wake_pending) {
    // A wake raced the slice; whatever it announced has not been
    // looked at yet — run again.
    t->wake_pending = false;
    EnqueueLocked(t);
    return;
  }
  if (r.due_ms >= 0) {
    t->state = TaskState::kWaiting;
    t->due_ms = r.due_ms;
    return;
  }
  if (r.did_work) {
    ++stats_.requeues;
    EnqueueLocked(t);
    return;
  }
  t->state = TaskState::kWaiting;
  t->due_ms = -1;
}

Scheduler::Task* Scheduler::PopReadyLocked(int worker) {
  auto pop_from = [](std::deque<Task*>& dq) -> Task* {
    while (!dq.empty()) {
      Task* t = dq.front();
      dq.pop_front();
      if (t->state == TaskState::kQueued) return t;
      // Stale entry: killed while queued. Drop it.
    }
    return nullptr;
  };
  Task* t = nullptr;
  if (worker >= 0 && worker < static_cast<int>(pinned_.size())) {
    t = pop_from(pinned_[static_cast<size_t>(worker)]);
  }
  if (t == nullptr) t = pop_from(ready_);
  if (t != nullptr) PrepareSliceLocked(t);
  return t;
}

void Scheduler::PrepareSliceLocked(Task* t) {
  t->state = TaskState::kRunning;
  // Checkpoint epoch hand-off: the slice acts on the epoch visible at
  // pop time; a checkpoint starting mid-slice reaches the task on its
  // next pop (its barrier pages are still caught via barrier_hits).
  QueryRun* run = t->run;
  if (run->ckpt_active && !run->ckpt_serializing) {
    t->ckpt_epoch = run->ckpt_barrier_id;
    t->slice_barrier_seen = t->barrier_seen;
  } else {
    t->ckpt_epoch = 0;
  }
}

void Scheduler::WorkerLoop(int worker) {
  std::unique_lock<std::mutex> lock(mu_);
  while (!stop_) {
    if (options_.pace_sources) PromoteDueLocked(clock_->NowMs());
    Task* t = PopReadyLocked(worker);
    if (t != nullptr) {
      lock.unlock();
      // The thread token makes the consumer-affinity tripwire attest
      // that only this task drains its pinned input queues.
      DataQueue::SetThreadConsumerToken(t->token);
      SliceResult r = RunSlice(t);
      DataQueue::SetThreadConsumerToken(0);
      lock.lock();
      OnSliceDoneLocked(t, r, worker);
      // This slice may have been the last one a pending checkpoint
      // was waiting on (park or kill) — serialize if so.
      if (QueryRun* ck = FindQuiescedCheckpointLocked()) {
        lock.unlock();
        ServiceCheckpoint(ck);
        lock.lock();
      }
      continue;
    }
    // Idle: timed wait (same missed-notify-costs-latency-never-
    // correctness idiom as the threaded executor's wake objects, and
    // the poll that releases paced sources when their time comes).
    ++idle_workers_;
    work_cv_.wait_for(lock, std::chrono::milliseconds(2));
    --idle_workers_;
  }
}

Status Scheduler::Wait(QueryId id, double timeout_ms) {
  QueryRun* run = nullptr;
  {
    std::unique_lock<std::mutex> lock(mu_);
    run = FindRunLocked(id);
    if (run == nullptr) {
      return Status::NotFound("unknown query id");
    }
    if (options_.manual) {
      if (!run->done) {
        return Status::FailedPrecondition(
            "manual-mode query not finished; drive the scheduler "
            "(ReadyCount/StepReadyAt) to completion first");
      }
    } else if (timeout_ms >= 0) {
      // Stall watchdog: a wedged plan (operator swallowing EOS, lost
      // wake, live-locked feedback loop) trips the deadline and gets
      // diagnosed instead of hanging the caller forever.
      const auto deadline =
          std::chrono::steady_clock::now() +
          std::chrono::duration_cast<std::chrono::steady_clock::duration>(
              std::chrono::duration<double, std::milli>(timeout_ms));
      if (!done_cv_.wait_until(lock, deadline,
                               [&] { return run->done || stop_; })) {
        return Status::DeadlineExceeded(
            "query " + std::to_string(id) + " still running after " +
            std::to_string(timeout_ms) + " ms\n" + StallReportLocked());
      }
      if (!run->done) {
        return Status::Cancelled("scheduler shut down before query end");
      }
    } else {
      done_cv_.wait(lock, [&] { return run->done || stop_; });
      if (!run->done) {
        return Status::Cancelled("scheduler shut down before query end");
      }
    }
    if (run->closed) return run->status;
    run->closed = true;
  }
  // Close outside the mutex: operators may flush or allocate.
  Status st = run->status;
  for (int64_t op_id = 0; op_id < run->plan->num_operators(); ++op_id) {
    Status cst = run->plan->op(op_id)->Close();
    if (st.ok() && !cst.ok()) st = cst;
  }
  std::lock_guard<std::mutex> lock(mu_);
  run->status = st;
  return st;
}

bool Scheduler::Done(QueryId id) {
  std::lock_guard<std::mutex> lock(mu_);
  QueryRun* run = FindRunLocked(id);
  return run != nullptr && run->done;
}

bool Scheduler::AllDone() {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& run : runs_) {
    if (!run->done) return false;
  }
  return true;
}

void Scheduler::WakeAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& run : runs_) {
    if (run->done) continue;
    for (const auto& task : run->tasks) WakeLocked(task.get());
  }
}

void Scheduler::PruneKilledLocked() {
  ready_.erase(std::remove_if(ready_.begin(), ready_.end(),
                              [](const Task* t) {
                                return t->state != TaskState::kQueued;
                              }),
               ready_.end());
}

size_t Scheduler::ReadyCount() {
  std::lock_guard<std::mutex> lock(mu_);
  PruneKilledLocked();
  return ready_.size();
}

Status Scheduler::StepReadyAt(size_t index) {
  if (!options_.manual) {
    return Status::FailedPrecondition(
        "StepReadyAt requires manual mode");
  }
  Task* t = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    PruneKilledLocked();
    if (index >= ready_.size()) {
      return Status::OutOfRange("ready index out of range");
    }
    t = ready_[index];
    ready_.erase(ready_.begin() + static_cast<ptrdiff_t>(index));
    PrepareSliceLocked(t);
  }
  DataQueue::SetThreadConsumerToken(t->token);
  SliceResult r = RunSlice(t);
  DataQueue::SetThreadConsumerToken(0);
  QueryRun* ck = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    OnSliceDoneLocked(t, r, /*worker=*/-1);
    ck = FindQuiescedCheckpointLocked();
  }
  // Manual mode: serialize inline (single-threaded by contract), so
  // the very next ReadyCount sees the unparked tasks and the harness
  // drive loop never stalls on a quiesced checkpoint.
  if (ck != nullptr) ServiceCheckpoint(ck);
  return Status::OK();
}

int Scheduler::PromoteDueLocked(TimeMs now_ms) {
  int released = 0;
  for (const auto& run : runs_) {
    if (run->done) continue;
    for (const auto& task : run->tasks) {
      Task* t = task.get();
      if (t->state == TaskState::kWaiting && t->due_ms >= 0 &&
          t->due_ms <= now_ms) {
        ++stats_.wakes_delivered;
        // The release re-enqueues unconditionally, so any wake that
        // coalesced into a busy window is serviced by the very next
        // slice — consume the flag rather than replaying it later.
        t->wake_pending = false;
        EnqueueLocked(t);
        ++released;
      }
    }
  }
  return released;
}

int Scheduler::ReleaseDue(TimeMs now_ms) {
  std::lock_guard<std::mutex> lock(mu_);
  return PromoteDueLocked(now_ms);
}

std::optional<TimeMs> Scheduler::NextDueLocked() const {
  std::optional<TimeMs> best;
  for (const auto& run : runs_) {
    if (run->done) continue;
    for (const auto& task : run->tasks) {
      if (task->state == TaskState::kWaiting && task->due_ms >= 0 &&
          (!best.has_value() || task->due_ms < *best)) {
        best = task->due_ms;
      }
    }
  }
  return best;
}

std::optional<TimeMs> Scheduler::NextDueMs() {
  std::lock_guard<std::mutex> lock(mu_);
  return NextDueLocked();
}

void Scheduler::SetWakeHook(WakeHook hook) {
  NSTREAM_CHECK(options_.manual)
      << "SetWakeHook is a manual-mode (harness) facility";
  wake_hook_ = std::move(hook);
}

void Scheduler::InjectWake(QueryId id, int64_t op_id) {
  std::lock_guard<std::mutex> lock(mu_);
  QueryRun* run = FindRunLocked(id);
  if (run == nullptr || op_id < 0 ||
      op_id >= static_cast<int64_t>(run->tasks.size())) {
    return;
  }
  WakeLocked(run->tasks[static_cast<size_t>(op_id)].get());
}

Scheduler::QueryRun* Scheduler::FindRunLocked(QueryId id) const {
  for (const auto& run : runs_) {
    if (run->id == id) return run.get();
  }
  return nullptr;
}

// ---------------------------------------------------------------------------
// Punctuation-aligned checkpointing
// ---------------------------------------------------------------------------

Status Scheduler::StartCheckpoint(QueryId id, CheckpointOptions opts) {
  if (opts.path.empty()) {
    return Status::InvalidArgument("checkpoint path is empty");
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    QueryRun* run = FindRunLocked(id);
    if (run == nullptr) return Status::NotFound("unknown query id");
    if (run->failed) return run->status;
    if (run->done) {
      return Status::FailedPrecondition(
          "query already finished; nothing to checkpoint");
    }
    if (run->ckpt_active) {
      return Status::FailedPrecondition(
          "a checkpoint is already in progress for this query");
    }
    run->ckpt_active = true;
    run->ckpt_serializing = false;
    run->ckpt_result_ready = false;
    run->ckpt_barrier_id = next_barrier_id_++;
    run->ckpt_opts = std::move(opts);
    run->ckpt_parked_count = 0;
    for (auto& task : run->tasks) {
      Task* t = task.get();
      t->ckpt_parked = false;
      // Safe against a RUNNING slice: slices only read their own
      // slice_barrier_seen copy, never this vector.
      t->barrier_seen.assign(t->barrier_seen.size(), false);
      // Wake everything so idle sources emit their barrier promptly.
      // Direct WakeLocked, not Wake: checkpoint wakes bypass the
      // harness wake hook (they are scheduler-internal, not
      // data-arrival events the harness wants to reorder).
      if (t->state != TaskState::kKilled) WakeLocked(t);
    }
  }
  work_cv_.notify_all();
  return Status::OK();
}

std::optional<Status> Scheduler::CheckpointResult(QueryId id) {
  std::lock_guard<std::mutex> lock(mu_);
  QueryRun* run = FindRunLocked(id);
  if (run == nullptr) return Status::NotFound("unknown query id");
  if (!run->ckpt_result_ready) return std::nullopt;
  run->ckpt_result_ready = false;
  return run->ckpt_result;
}

Status Scheduler::Checkpoint(QueryId id, const std::string& path) {
  if (options_.manual) {
    return Status::FailedPrecondition(
        "blocking Checkpoint needs pool workers; in manual mode use "
        "StartCheckpoint + drive + CheckpointResult");
  }
  NSTREAM_RETURN_NOT_OK(StartCheckpoint(id, CheckpointOptions{path, {}}));
  std::unique_lock<std::mutex> lock(mu_);
  QueryRun* run = FindRunLocked(id);
  ckpt_cv_.wait(lock, [&] { return run->ckpt_result_ready || stop_; });
  if (!run->ckpt_result_ready) {
    return Status::Cancelled("scheduler shut down during checkpoint");
  }
  run->ckpt_result_ready = false;
  return run->ckpt_result;
}

Scheduler::QueryRun* Scheduler::FindQuiescedCheckpointLocked() {
  for (const auto& run : runs_) {
    if (run->ckpt_active && !run->ckpt_serializing &&
        run->ckpt_parked_count == run->live) {
      // live == 0 is a valid quiesce: every remaining task finished
      // during the checkpoint — the snapshot captures the final state.
      run->ckpt_serializing = true;
      return run.get();
    }
  }
  return nullptr;
}

void Scheduler::ServiceCheckpoint(QueryRun* run) {
  // Every task of this query is parked or killed and this thread holds
  // the ckpt_serializing claim, so operator state and queue internals
  // are quiescent; the park transitions went through mu_, giving this
  // thread happens-before on all task-written state.
  Status st = CheckpointCoordinator::WriteSnapshot(run->plan, run->rt.get(),
                                                  run->ckpt_opts);
  {
    std::lock_guard<std::mutex> lock(mu_);
    run->ckpt_active = false;
    run->ckpt_serializing = false;
    run->ckpt_result = st;
    run->ckpt_result_ready = true;
    run->ckpt_parked_count = 0;
    for (auto& task : run->tasks) {
      Task* t = task.get();
      t->barrier_seen.assign(t->barrier_seen.size(), false);
      if (t->ckpt_parked) {
        t->ckpt_parked = false;
        t->wake_pending = false;  // the unconditional enqueue services it
        if (t->state == TaskState::kWaiting) EnqueueLocked(t);
      }
    }
  }
  ckpt_cv_.notify_all();
  work_cv_.notify_all();
}

// ---------------------------------------------------------------------------
// Stall watchdog
// ---------------------------------------------------------------------------

std::string Scheduler::StallReport() {
  std::lock_guard<std::mutex> lock(mu_);
  return StallReportLocked();
}

std::string Scheduler::StallReportLocked() {
  std::ostringstream out;
  out << "=== scheduler stall report ===\n";
  for (const auto& run : runs_) {
    out << "query " << run->id << ": live " << run->live << "/"
        << run->tasks.size() << (run->failed ? " FAILED" : "")
        << (run->done ? " done" : "");
    if (run->ckpt_active) {
      out << " checkpoint barrier#" << run->ckpt_barrier_id << " parked "
          << run->ckpt_parked_count << "/" << run->live
          << (run->ckpt_serializing ? " serializing" : "");
    }
    out << "\n";
    for (const auto& task : run->tasks) {
      const Task* t = task.get();
      const Operator* op = run->plan->op(t->op_id);
      out << "  task " << t->op_id << " '" << op->name()
          << "' state=" << TaskStateName(t->state)
          << " wake_pending=" << (t->wake_pending ? 1 : 0)
          << " busy=" << (t->busy ? 1 : 0)
          << " ckpt_parked=" << (t->ckpt_parked ? 1 : 0);
      if (t->due_ms >= 0) out << " due_ms=" << t->due_ms;
      if (!t->status.ok()) out << " status=" << t->status.ToString();
      out << "\n";
    }
    int edge = 0;
    for (const auto& conn : run->rt->connections()) {
      const DataQueueStats qs = conn->data->stats();
      const ControlChannelStats cs = conn->control->stats();
      const uint64_t data_depth = qs.pages_flushed_total() - qs.pages_popped;
      const uint64_t ctl_depth = cs.messages_pushed - cs.messages_popped;
      out << "  edge " << edge++ << " "
          << run->plan->op(conn->producer_op)->name() << ":"
          << conn->producer_port << " -> "
          << run->plan->op(conn->consumer_op)->name() << ":"
          << conn->consumer_port << " data_pages=" << data_depth
          << " control_msgs=" << ctl_depth << "\n";
    }
  }
  return out.str();
}

SchedulerStats Scheduler::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  SchedulerStats out = stats_;
  for (const auto& run : runs_) {
    for (const auto& conn : run->rt->connections()) {
      out.affinity_violations += conn->data->affinity_violations();
    }
  }
  return out;
}

TaskState Scheduler::task_state(QueryId id, int64_t op_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  QueryRun* run = FindRunLocked(id);
  NSTREAM_CHECK(run != nullptr &&
                op_id < static_cast<int64_t>(run->tasks.size()))
      << "task_state: unknown (query, op)";
  return run->tasks[static_cast<size_t>(op_id)]->state;
}

uint32_t Scheduler::task_worker_mask(QueryId id, int64_t op_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  QueryRun* run = FindRunLocked(id);
  NSTREAM_CHECK(run != nullptr &&
                op_id < static_cast<int64_t>(run->tasks.size()))
      << "task_worker_mask: unknown (query, op)";
  return run->tasks[static_cast<size_t>(op_id)]->worker_mask;
}

// ---------------------------------------------------------------------------
// PooledExecutor
// ---------------------------------------------------------------------------

PooledExecutor::PooledExecutor(PooledExecutorOptions options) {
  SchedulerOptions sopts;
  sopts.num_workers = options.pool_size;
  sopts.queue = options.queue;
  sopts.charge_policy = options.charge_policy;
  sopts.pace_sources = options.pace_sources;
  sopts.pace_scale = options.pace_scale;
  sopts.max_pages_per_wake = options.max_pages_per_wake;
  sopts.source_batch_per_slice = options.source_batch_per_slice;
  sopts.use_lockfree_queues = options.use_lockfree_queues;
  scheduler_ = std::make_unique<Scheduler>(sopts);
}

Status PooledExecutor::Run(QueryPlan* plan) {
  NSTREAM_ASSIGN_OR_RETURN(QueryId id, scheduler_->Submit(plan));
  return scheduler_->Wait(id);
}

Result<QueryId> PooledExecutor::Submit(QueryPlan* plan) {
  return scheduler_->Submit(plan);
}

Result<QueryId> PooledExecutor::SubmitRecovered(
    QueryPlan* plan, const std::string& snapshot_path) {
  return scheduler_->SubmitRecovered(plan, snapshot_path);
}

Status PooledExecutor::Wait(QueryId id, double timeout_ms) {
  return scheduler_->Wait(id, timeout_ms);
}

Status PooledExecutor::Checkpoint(QueryId id, const std::string& path) {
  return scheduler_->Checkpoint(id, path);
}

}  // namespace nstream
