// FeedbackPolicy: how aggressively a feedback-aware operator responds
// to assumed punctuation. Experiment 2's schemes F0-F3 (Fig. 7) are
// exactly these policies applied to the speed-map plan:
//   F0 = kIgnore           — feedback-unaware baseline
//   F1 = kOutputGuardOnly  — suppress matching results at emission
//   F2 = kExploit          — also purge state / guard input
//   F3 = kExploitAndPropagate — also relay feedback upstream

#ifndef NSTREAM_CORE_FEEDBACK_POLICY_H_
#define NSTREAM_CORE_FEEDBACK_POLICY_H_

#include <cstdint>

namespace nstream {

enum class FeedbackPolicy : uint8_t {
  kIgnore = 0,
  kOutputGuardOnly,
  kExploit,
  kExploitAndPropagate,
};

inline const char* FeedbackPolicyName(FeedbackPolicy p) {
  switch (p) {
    case FeedbackPolicy::kIgnore:
      return "F0/ignore";
    case FeedbackPolicy::kOutputGuardOnly:
      return "F1/output-guard";
    case FeedbackPolicy::kExploit:
      return "F2/exploit";
    case FeedbackPolicy::kExploitAndPropagate:
      return "F3/exploit+propagate";
  }
  return "?";
}

inline bool PolicyAtLeast(FeedbackPolicy p, FeedbackPolicy floor) {
  return static_cast<int>(p) >= static_cast<int>(floor);
}

}  // namespace nstream

#endif  // NSTREAM_CORE_FEEDBACK_POLICY_H_
