// Operator characterizations as published (Table 1: COUNT, Table 2:
// JOIN). These are the paper's normative rows, kept as data so tests
// can cross-check the *implemented* decision logic
// (DecideAggFeedback, the JOIN SchemaMap machinery) against the
// published tables, and so benches can print them next to measured
// behaviour.

#ifndef NSTREAM_CORE_CHARACTERIZATION_H_
#define NSTREAM_CORE_CHARACTERIZATION_H_

#include <string>
#include <vector>

namespace nstream {

/// One row of a published characterization table.
struct CharacterizationRow {
  std::string punctuation;    // shape, e.g. "¬[g,*]"
  std::string local_exploit;  // prescribed local actions
  std::string propagation;    // prescribed propagation
};

/// Table 1 — a characterization for COUNT with output schema (g, a),
/// g = grouping attributes, a = the count.
const std::vector<CharacterizationRow>& Table1Count();

/// Table 2 — a characterization for JOIN with output schema (L, J, R),
/// L/R = attributes unique to the left/right input, J = join attrs.
const std::vector<CharacterizationRow>& Table2Join();

/// Render a table for logs/benches.
std::string RenderCharacterization(
    const std::string& title,
    const std::vector<CharacterizationRow>& rows);

}  // namespace nstream

#endif  // NSTREAM_CORE_CHARACTERIZATION_H_
