#include "core/correctness.h"

#include <unordered_map>

#include "common/string_util.h"

namespace nstream {

std::string ExploitationCheck::ToString() const {
  return StringPrintf(
      "%s (missing_uncovered=%d, extra=%d, suppressed=%d, "
      "covered_in_baseline=%d)",
      correct ? "correct" : "VIOLATION", missing_uncovered, extra,
      suppressed, covered_in_baseline);
}

ExploitationCheck CheckCorrectExploitation(
    const std::vector<Tuple>& baseline,
    const std::vector<Tuple>& exploited, const PunctPattern& f) {
  ExploitationCheck out;

  // Multiset of exploited tuples, keyed by canonical rendering.
  std::unordered_map<std::string, int> s_count;
  for (const Tuple& t : exploited) {
    ++s_count[t.ToString()];
  }

  for (const Tuple& t : baseline) {
    bool covered = f.Matches(t);
    if (covered) ++out.covered_in_baseline;
    std::string key = t.ToString();
    auto it = s_count.find(key);
    if (it != s_count.end() && it->second > 0) {
      --it->second;  // present in S: fine either way
    } else if (covered) {
      ++out.suppressed;  // legitimately exploited
    } else {
      ++out.missing_uncovered;  // violation: lost an uncovered tuple
    }
  }
  // Anything left in S was never in S_R.
  for (const auto& [key, count] : s_count) {
    out.extra += count;
  }
  out.correct = out.missing_uncovered == 0 && out.extra == 0;
  return out;
}

}  // namespace nstream
