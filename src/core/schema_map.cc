#include "core/schema_map.h"

#include "common/string_util.h"

namespace nstream {

SchemaMap::SchemaMap(int num_inputs, int out_arity)
    : num_inputs_(num_inputs),
      out_arity_(out_arity),
      map_(static_cast<size_t>(out_arity),
           std::vector<int>(static_cast<size_t>(num_inputs), -1)) {}

SchemaMap SchemaMap::Identity(int arity) {
  SchemaMap m(1, arity);
  for (int i = 0; i < arity; ++i) {
    m.map_[static_cast<size_t>(i)][0] = i;
  }
  return m;
}

SchemaMap SchemaMap::Projection(const std::vector<int>& out_to_in) {
  SchemaMap m(1, static_cast<int>(out_to_in.size()));
  for (size_t i = 0; i < out_to_in.size(); ++i) {
    if (out_to_in[i] >= 0) m.map_[i][0] = out_to_in[i];
  }
  return m;
}

Status SchemaMap::Map(int out_idx, int input, int in_idx) {
  if (out_idx < 0 || out_idx >= out_arity_) {
    return Status::OutOfRange(
        StringPrintf("SchemaMap: out_idx %d out of range", out_idx));
  }
  if (input < 0 || input >= num_inputs_) {
    return Status::OutOfRange(
        StringPrintf("SchemaMap: input %d out of range", input));
  }
  if (in_idx < 0) {
    return Status::InvalidArgument("SchemaMap: negative in_idx");
  }
  map_[static_cast<size_t>(out_idx)][static_cast<size_t>(input)] = in_idx;
  return Status::OK();
}

std::optional<int> SchemaMap::InputIndex(int out_idx, int input) const {
  if (out_idx < 0 || out_idx >= out_arity_ || input < 0 ||
      input >= num_inputs_) {
    return std::nullopt;
  }
  int v = map_[static_cast<size_t>(out_idx)][static_cast<size_t>(input)];
  if (v < 0) return std::nullopt;
  return v;
}

bool SchemaMap::IsMapped(int out_idx) const {
  for (int i = 0; i < num_inputs_; ++i) {
    if (InputIndex(out_idx, i).has_value()) return true;
  }
  return false;
}

std::string SchemaMap::ToString() const {
  std::string out = "SchemaMap{";
  for (int o = 0; o < out_arity_; ++o) {
    if (o > 0) out += ", ";
    out += StringPrintf("out%d->", o);
    bool any = false;
    for (int i = 0; i < num_inputs_; ++i) {
      auto idx = InputIndex(o, i);
      if (idx.has_value()) {
        if (any) out += "/";
        out += StringPrintf("in%d.%d", i, *idx);
        any = true;
      }
    }
    if (!any) out += "computed";
  }
  out += "}";
  return out;
}

}  // namespace nstream
