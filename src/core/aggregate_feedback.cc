#include "core/aggregate_feedback.h"

#include <algorithm>

namespace nstream {

const char* AggMonotonicityName(AggMonotonicity m) {
  switch (m) {
    case AggMonotonicity::kNone:
      return "none";
    case AggMonotonicity::kNonDecreasing:
      return "non-decreasing";
    case AggMonotonicity::kNonIncreasing:
      return "non-increasing";
  }
  return "?";
}

BoundShape ClassifyBound(const AttrPattern& p) {
  switch (p.op()) {
    case PatternOp::kAny:
      return BoundShape::kNone;
    case PatternOp::kEq:
      return BoundShape::kExact;
    case PatternOp::kGe:
    case PatternOp::kGt:
      return BoundShape::kLowerBounded;
    case PatternOp::kLe:
    case PatternOp::kLt:
      return BoundShape::kUpperBounded;
    default:
      return BoundShape::kOther;
  }
}

bool PartialImpliesFinal(const AttrPattern& p, AggMonotonicity mono) {
  BoundShape shape = ClassifyBound(p);
  switch (mono) {
    case AggMonotonicity::kNonDecreasing:
      // partial ≥ a and value only grows ⇒ final ≥ a.
      return shape == BoundShape::kLowerBounded;
    case AggMonotonicity::kNonIncreasing:
      return shape == BoundShape::kUpperBounded;
    case AggMonotonicity::kNone:
      return false;
  }
  return false;
}

std::string AggFeedbackDecision::ToString() const {
  std::string out = "decision{";
  bool first = true;
  auto add = [&](bool flag, const char* name) {
    if (!flag) return;
    if (!first) out += ", ";
    out += name;
    first = false;
  };
  add(purge_groups, "purge_groups");
  add(guard_input_groups, "guard_input_groups");
  add(propagate_groups, "propagate_groups");
  add(purge_by_partial, "purge_by_partial");
  add(guard_output, "guard_output");
  add(null_response, "null_response");
  out += "}";
  return out;
}

AggFeedbackDecision DecideAggFeedback(
    const PunctPattern& f, const std::vector<int>& group_out_idx,
    const std::vector<int>& agg_out_idx, AggMonotonicity mono) {
  AggFeedbackDecision d;
  std::vector<int> constrained = f.ConstrainedIndices();
  if (constrained.empty()) {
    // ¬[*,...,*] would suppress everything; treat as inert.
    d.null_response = true;
    return d;
  }
  auto in = [](const std::vector<int>& v, int x) {
    return std::find(v.begin(), v.end(), x) != v.end();
  };
  bool any_group = false;
  bool any_agg = false;
  bool all_agg_implication_valid = true;
  for (int idx : constrained) {
    if (in(group_out_idx, idx)) {
      any_group = true;
    } else if (in(agg_out_idx, idx)) {
      any_agg = true;
      if (!PartialImpliesFinal(f.attr(idx), mono)) {
        all_agg_implication_valid = false;
      }
    } else {
      // Constraint on an attribute we know nothing about: be
      // conservative, only guard output.
      d.guard_output = true;
      return d;
    }
  }

  if (!any_agg) {
    // Table 1 row ¬[g,*]: group attributes are stable, so any group
    // matching now matches forever — purge, guard, propagate.
    d.purge_groups = true;
    d.guard_input_groups = true;
    d.propagate_groups = true;
    return d;
  }

  if (all_agg_implication_valid) {
    // Table 1 row ¬[*,≥a] for monotone aggregates (optionally with
    // extra stable group constraints): a partial that matches can
    // only stay matching — purge & tombstone; the operator derives
    // the purged group set G and propagates it.
    d.purge_by_partial = true;
    // Still guard output: a brand-new group may *become* matching
    // between purge scans; suppression at emit is the backstop.
    d.guard_output = true;
    return d;
  }

  // Rows ¬[*,a] and ¬[*,≤a] (COUNT), or any bound on a non-monotone
  // aggregate (AVERAGE §3.5): output guard is the only sound action.
  (void)any_group;
  d.guard_output = true;
  return d;
}

}  // namespace nstream
