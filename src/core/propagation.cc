#include "core/propagation.h"

#include "common/string_util.h"

namespace nstream {

bool CanPropagate(const PunctPattern& pattern, const SchemaMap& map,
                  int input) {
  if (pattern.arity() != map.out_arity()) return false;
  std::vector<int> constrained = pattern.ConstrainedIndices();
  if (constrained.empty()) return false;  // nothing to say upstream
  for (int out_idx : constrained) {
    if (!map.InputIndex(out_idx, input).has_value()) return false;
  }
  return true;
}

Result<PunctPattern> DeriveForInput(const PunctPattern& pattern,
                                    const SchemaMap& map, int input,
                                    int in_arity) {
  if (pattern.arity() != map.out_arity()) {
    return Status::SchemaMismatch(StringPrintf(
        "pattern arity %d vs SchemaMap out arity %d", pattern.arity(),
        map.out_arity()));
  }
  if (!CanPropagate(pattern, map, input)) {
    return Status::Unsafe(StringPrintf(
        "pattern %s cannot be safely propagated to input %d "
        "(constrained attribute not carried by that input)",
        pattern.ToString().c_str(), input));
  }
  PunctPattern out = PunctPattern::AllWildcard(in_arity);
  for (int out_idx : pattern.ConstrainedIndices()) {
    int in_idx = *map.InputIndex(out_idx, input);
    if (in_idx >= in_arity) {
      return Status::OutOfRange(StringPrintf(
          "SchemaMap points at input attribute %d beyond arity %d",
          in_idx, in_arity));
    }
    // Two output attributes mapping to the same input attribute with
    // different constraints would require an intersection; be
    // conservative and refuse unless the constraints are identical.
    if (!out.attr(in_idx).is_wildcard() &&
        out.attr(in_idx) != pattern.attr(out_idx)) {
      return Status::Unsafe(StringPrintf(
          "conflicting constraints map to input attribute %d", in_idx));
    }
    out = out.With(in_idx, pattern.attr(out_idx));
  }
  return out;
}

std::vector<std::optional<PunctPattern>> DeriveAll(
    const PunctPattern& pattern, const SchemaMap& map,
    const std::vector<int>& in_arities) {
  std::vector<std::optional<PunctPattern>> out(
      static_cast<size_t>(map.num_inputs()));
  for (int i = 0; i < map.num_inputs(); ++i) {
    Result<PunctPattern> r = DeriveForInput(
        pattern, map, i, in_arities[static_cast<size_t>(i)]);
    if (r.ok()) out[static_cast<size_t>(i)] = r.MoveValue();
  }
  return out;
}

}  // namespace nstream
