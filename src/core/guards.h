// Guards: the state an operator installs when exploiting assumed
// feedback (§4.3). An *input guard* drops tuples before computation; an
// *output guard* suppresses results after computation. Both hold a set
// of punctuation patterns (the union of received feedback).
//
// §4.4's state-accumulation concern is addressed here: a guard pattern
// whose attributes are delimited will eventually be *covered* by
// embedded punctuation ("no more such tuples will ever arrive"), at
// which point the guard is dead weight and is expired.

#ifndef NSTREAM_CORE_GUARDS_H_
#define NSTREAM_CORE_GUARDS_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "punct/compiled_pattern.h"
#include "punct/punct_pattern.h"
#include "types/tuple.h"

namespace nstream {

/// A set of assumed-feedback patterns acting as a filter.
class GuardSet {
 public:
  GuardSet() = default;

  /// Install a guard. Patterns subsumed by an existing guard are
  /// dropped; existing guards subsumed by the new one are replaced.
  /// Returns true if the set changed.
  bool Add(const PunctPattern& pattern);

  /// Does any guard match this tuple? (matching tuples are to be
  /// dropped / suppressed).
  bool Blocks(const Tuple& t) const;

  /// Expire guards covered by embedded punctuation: if `punct`
  /// guarantees no more tuples matching a guard will arrive, that
  /// guard can never block anything again — remove it. Returns the
  /// number of guards removed.
  int ExpireCovered(const Punctuation& punct);

  void Clear() {
    patterns_.clear();
    compiled_.clear();
  }
  int size() const { return static_cast<int>(patterns_.size()); }
  bool empty() const { return patterns_.empty(); }
  const std::vector<PunctPattern>& patterns() const { return patterns_; }

  // Lifetime counters (for the guard-expiry ablation bench).
  uint64_t total_installed() const { return total_installed_; }
  uint64_t total_expired() const { return total_expired_; }
  uint64_t total_blocked() const { return total_blocked_; }

  std::string ToString() const;

 private:
  // patterns_ and compiled_ are parallel: patterns_ drives the
  // subsumption logic (Add/ExpireCovered), compiled_ the per-tuple
  // Blocks hot path. Compilations come from the global
  // CompiledPatternCache, so the N guard sets a relayed feedback
  // installs along its path share one compilation.
  std::vector<PunctPattern> patterns_;
  std::vector<std::shared_ptr<const CompiledPattern>> compiled_;
  uint64_t total_installed_ = 0;
  uint64_t total_expired_ = 0;
  mutable uint64_t total_blocked_ = 0;
};

}  // namespace nstream

#endif  // NSTREAM_CORE_GUARDS_H_
