#include "core/characterization.h"

namespace nstream {

const std::vector<CharacterizationRow>& Table1Count() {
  static const std::vector<CharacterizationRow> kRows = {
      {"\xC2\xAC[g,*]",
       "remove group g from local state; guard input (g)",
       "propagate g (in terms of input schema)"},
      {"\xC2\xAC[*,a]", "guard output (a)", "none"},
      {"\xC2\xAC[*,\xE2\x89\xA5""a] / \xC2\xAC[*,>a]",
       "G <- ids in local state matching the predicate; purge state (G); "
       "guard input (G)",
       "propagate G (in terms of input schema)"},
      {"\xC2\xAC[*,\xE2\x89\xA4""a] / \xC2\xAC[*,<a]",
       "guard output (<=a or <a)", "none"},
  };
  return kRows;
}

const std::vector<CharacterizationRow>& Table2Join() {
  static const std::vector<CharacterizationRow> kRows = {
      {"\xC2\xAC[*,j,*]",
       "purge matching tuples from both hash tables; guard input",
       "propagate \xC2\xAC[*,j] to left input and \xC2\xAC[j,*] to "
       "right input"},
      {"\xC2\xAC[l,*,*]",
       "purge matching tuples from left hash table; guard input",
       "propagate \xC2\xAC[l,*] to left input"},
      {"\xC2\xAC[*,*,r]",
       "purge matching tuples from right hash table; guard input",
       "propagate \xC2\xAC[*,r] to right input"},
      {"\xC2\xAC[l,*,r]", "guard output", "none (unsafe to split)"},
  };
  return kRows;
}

std::string RenderCharacterization(
    const std::string& title,
    const std::vector<CharacterizationRow>& rows) {
  std::string out = title + "\n";
  for (const CharacterizationRow& r : rows) {
    out += "  " + r.punctuation + "\n";
    out += "    local exploit: " + r.local_exploit + "\n";
    out += "    propagation:   " + r.propagation + "\n";
  }
  return out;
}

}  // namespace nstream
