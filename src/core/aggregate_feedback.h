// Monotonicity-aware feedback reasoning for window aggregates —
// the generalization behind Table 1 (COUNT) and the §3.5 discussion of
// AVERAGE, MAX, SUM.
//
// The key soundness question when an aggregate receives assumed
// feedback constraining its *output* (e.g. ¬[*,≥50]): may it purge an
// open window whose *partial* aggregate matches? Only if
//
//     partial matches  ⇒  final matches
//
// which holds exactly when the aggregate is monotone in the direction
// of the bound: MAX/COUNT (non-decreasing) with ≥/> bounds, MIN
// (non-increasing) with ≤/< bounds, SUM when inputs are known
// non-negative. AVERAGE is non-monotone: a window at 51 can drop below
// 50 — purging it would be incorrect (§3.5); only an output guard is
// sound.

#ifndef NSTREAM_CORE_AGGREGATE_FEEDBACK_H_
#define NSTREAM_CORE_AGGREGATE_FEEDBACK_H_

#include <string>
#include <vector>

#include "punct/punct_pattern.h"

namespace nstream {

/// How the aggregate's value can evolve as more tuples arrive.
enum class AggMonotonicity : uint8_t {
  kNone = 0,       // AVERAGE; SUM over signed inputs
  kNonDecreasing,  // COUNT, MAX, SUM over non-negative inputs
  kNonIncreasing,  // MIN
};

const char* AggMonotonicityName(AggMonotonicity m);

/// Shape of the constraint on an aggregate output attribute.
enum class BoundShape : uint8_t {
  kNone = 0,       // wildcard
  kExact,          // = a
  kLowerBounded,   // ≥ a or > a
  kUpperBounded,   // ≤ a or < a
  kOther,          // ≠, range, null tests
};

BoundShape ClassifyBound(const AttrPattern& p);

/// Does "partial matches p" imply "final matches p" for an aggregate
/// with monotonicity `mono`? (The purge-soundness condition.)
bool PartialImpliesFinal(const AttrPattern& p, AggMonotonicity mono);

/// The response plan a window aggregate derives from one assumed
/// feedback punctuation (the rows of Table 1, generalized).
struct AggFeedbackDecision {
  // Row ¬[g,*]: drop matching groups now...
  bool purge_groups = false;
  // ...keep them from re-forming (guard on input, in group terms)...
  bool guard_input_groups = false;
  // ...and relay the group constraint upstream.
  bool propagate_groups = false;

  // Row ¬[*,≥a] with a monotone aggregate: scan partials, purge
  // matching groups, tombstone them so late tuples cannot recreate
  // them, and propagate the purged group ids upstream (the paper's
  // "G ← ids in local state that match; purge(G); guard input (G);
  // propagate G").
  bool purge_by_partial = false;

  // Rows ¬[*,a] and ¬[*,≤a] (or any non-implication-valid bound):
  // the only sound response is suppressing matching results at
  // emission time.
  bool guard_output = false;

  // Nothing sound to do (e.g. malformed arity).
  bool null_response = false;

  std::string ToString() const;
};

/// Decide the response for feedback pattern `f` over an aggregate
/// output schema whose attribute positions split into `group_out_idx`
/// (grouping/window attributes, stable per group) and `agg_out_idx`
/// (computed aggregate values).
AggFeedbackDecision DecideAggFeedback(
    const PunctPattern& f, const std::vector<int>& group_out_idx,
    const std::vector<int>& agg_out_idx, AggMonotonicity mono);

}  // namespace nstream

#endif  // NSTREAM_CORE_AGGREGATE_FEEDBACK_H_
