#include "core/guards.h"

#include "common/string_util.h"

namespace nstream {

bool GuardSet::Add(const PunctPattern& pattern) {
  for (const PunctPattern& existing : patterns_) {
    if (existing.Subsumes(pattern)) return false;  // already covered
  }
  // Drop existing guards the new one covers.
  std::vector<PunctPattern> kept;
  kept.reserve(patterns_.size() + 1);
  for (PunctPattern& existing : patterns_) {
    if (!pattern.Subsumes(existing)) kept.push_back(std::move(existing));
  }
  kept.push_back(pattern);
  patterns_ = std::move(kept);
  ++total_installed_;
  return true;
}

bool GuardSet::Blocks(const Tuple& t) const {
  for (const PunctPattern& p : patterns_) {
    if (p.Matches(t)) {
      ++total_blocked_;
      return true;
    }
  }
  return false;
}

int GuardSet::ExpireCovered(const Punctuation& punct) {
  std::vector<PunctPattern> kept;
  kept.reserve(patterns_.size());
  int removed = 0;
  for (PunctPattern& p : patterns_) {
    if (punct.Covers(p)) {
      ++removed;
    } else {
      kept.push_back(std::move(p));
    }
  }
  patterns_ = std::move(kept);
  total_expired_ += static_cast<uint64_t>(removed);
  return removed;
}

std::string GuardSet::ToString() const {
  std::vector<std::string> parts;
  parts.reserve(patterns_.size());
  for (const PunctPattern& p : patterns_) parts.push_back(p.ToString());
  return "guards{" + Join(parts, "; ") + "}";
}

}  // namespace nstream
