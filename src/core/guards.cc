#include "core/guards.h"

#include "common/string_util.h"

namespace nstream {

bool GuardSet::Add(const PunctPattern& pattern) {
  for (const PunctPattern& existing : patterns_) {
    if (existing.Subsumes(pattern)) return false;  // already covered
  }
  // Drop existing guards the new one covers.
  std::vector<PunctPattern> kept;
  std::vector<std::shared_ptr<const CompiledPattern>> kept_compiled;
  kept.reserve(patterns_.size() + 1);
  kept_compiled.reserve(patterns_.size() + 1);
  for (size_t i = 0; i < patterns_.size(); ++i) {
    if (!pattern.Subsumes(patterns_[i])) {
      kept.push_back(std::move(patterns_[i]));
      kept_compiled.push_back(std::move(compiled_[i]));
    }
  }
  kept.push_back(pattern);
  kept_compiled.push_back(CompiledPatternCache::Global().Get(pattern));
  patterns_ = std::move(kept);
  compiled_ = std::move(kept_compiled);
  ++total_installed_;
  return true;
}

bool GuardSet::Blocks(const Tuple& t) const {
  for (const std::shared_ptr<const CompiledPattern>& p : compiled_) {
    if (p->Matches(t)) {
      ++total_blocked_;
      return true;
    }
  }
  return false;
}

int GuardSet::ExpireCovered(const Punctuation& punct) {
  std::vector<PunctPattern> kept;
  std::vector<std::shared_ptr<const CompiledPattern>> kept_compiled;
  kept.reserve(patterns_.size());
  kept_compiled.reserve(patterns_.size());
  int removed = 0;
  for (size_t i = 0; i < patterns_.size(); ++i) {
    if (punct.Covers(patterns_[i])) {
      ++removed;
    } else {
      kept.push_back(std::move(patterns_[i]));
      kept_compiled.push_back(std::move(compiled_[i]));
    }
  }
  patterns_ = std::move(kept);
  compiled_ = std::move(kept_compiled);
  total_expired_ += static_cast<uint64_t>(removed);
  return removed;
}

std::string GuardSet::ToString() const {
  std::vector<std::string> parts;
  parts.reserve(patterns_.size());
  for (const PunctPattern& p : patterns_) parts.push_back(p.ToString());
  return "guards{" + Join(parts, "; ") + "}";
}

}  // namespace nstream
