// SchemaMap: records, per output attribute of an operator, which input
// attribute(s) it derives from. This is the "function that maps from
// output to input schema" that §4.2 identifies as the precondition for
// propagating feedback upstream. Computed attributes (aggregates) map
// to nothing; join attributes map to both inputs.

#ifndef NSTREAM_CORE_SCHEMA_MAP_H_
#define NSTREAM_CORE_SCHEMA_MAP_H_

#include <optional>
#include <string>
#include <vector>

#include "common/status.h"

namespace nstream {

class SchemaMap {
 public:
  /// A map for an operator with `num_inputs` inputs and `out_arity`
  /// output attributes; initially nothing is mapped (all computed).
  SchemaMap(int num_inputs, int out_arity);

  /// Identity map for a single-input operator whose output mirrors its
  /// input (SELECT, DUPLICATE outputs, PACE/UNION, IMPUTE).
  static SchemaMap Identity(int arity);

  /// Single-input projection: out attribute i comes from input
  /// attribute out_to_in[i] (-1 = computed).
  static SchemaMap Projection(const std::vector<int>& out_to_in);

  /// Declare that output attribute `out_idx` carries the value of
  /// input `input`'s attribute `in_idx`.
  Status Map(int out_idx, int input, int in_idx);

  int num_inputs() const { return num_inputs_; }
  int out_arity() const { return out_arity_; }

  /// Where does output attribute `out_idx` live on `input`?
  std::optional<int> InputIndex(int out_idx, int input) const;

  /// Is output attribute `out_idx` mapped to any input?
  bool IsMapped(int out_idx) const;

  std::string ToString() const;

 private:
  int num_inputs_;
  int out_arity_;
  // [out_idx][input] = in_idx or -1.
  std::vector<std::vector<int>> map_;
};

}  // namespace nstream

#endif  // NSTREAM_CORE_SCHEMA_MAP_H_
