// Safe propagation (§4.2, Definition 2). An operator O receiving
// feedback g may forward it to an antecedent only if the antecedent's
// exploitation cannot alter O's own correct exploitation. For
// conjunctive patterns this reduces to a coverage condition:
//
//   Propagation of pattern f to input i is safe iff every constrained
//   attribute of f is carried by input i (per the operator's
//   SchemaMap). The propagated pattern is f projected onto i's schema.
//
// The paper's JOIN example: with C(a,t,id,b) from A(a,t,id), B(t,id,b),
//   ¬[*,3,4,*]   → ¬[*,3,4] to A and ¬[3,4,*] to B   (join attrs on both)
//   ¬[50,*,*,*]  → ¬[50,*,*] to A only
//   ¬[50,*,*,50] → no safe propagation: constraints split across
//                  inputs; pushing each half separately would suppress
//                  tuples like <49,2,3,50> that the feedback does not
//                  cover.

#ifndef NSTREAM_CORE_PROPAGATION_H_
#define NSTREAM_CORE_PROPAGATION_H_

#include <optional>
#include <vector>

#include "common/status.h"
#include "core/schema_map.h"
#include "punct/punct_pattern.h"

namespace nstream {

/// Can `pattern` (over the operator's output schema) be safely
/// propagated to input `input`? True iff every constrained attribute
/// maps onto that input.
bool CanPropagate(const PunctPattern& pattern, const SchemaMap& map,
                  int input);

/// Derive the pattern to send to input `input` (arity `in_arity`).
/// Returns Status::Unsafe when propagation is not safe (Definition 2).
Result<PunctPattern> DeriveForInput(const PunctPattern& pattern,
                                    const SchemaMap& map, int input,
                                    int in_arity);

/// Per-input derivation for all inputs; entries are nullopt where
/// propagation is unsafe. `in_arities[i]` is input i's schema arity.
std::vector<std::optional<PunctPattern>> DeriveAll(
    const PunctPattern& pattern, const SchemaMap& map,
    const std::vector<int>& in_arities);

}  // namespace nstream

#endif  // NSTREAM_CORE_PROPAGATION_H_
