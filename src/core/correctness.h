// CorrectnessChecker: an executable rendering of Definition 1 (§4.1).
//
//   An operator O correctly exploits assumed punctuation f iff, upon
//   exploitation, it produces S with
//       S_R − subset(S_R, f)  ⊆  S  ⊆  S_R
//   where S_R is the output without exploitation.
//
// The test suite runs each feedback-aware operator twice — with and
// without feedback — and feeds both outputs through this checker. The
// null response (S ≡ S_R) and maximum exploitation
// (S ≡ S_R − subset(S_R,f)) are both correct; emitting tuples outside
// S_R, or losing tuples the feedback did not cover, is a violation.

#ifndef NSTREAM_CORE_CORRECTNESS_H_
#define NSTREAM_CORE_CORRECTNESS_H_

#include <string>
#include <vector>

#include "punct/punct_pattern.h"
#include "types/tuple.h"

namespace nstream {

struct ExploitationCheck {
  bool correct = true;
  // Tuples of S_R *not* covered by f that are missing from S — these
  // are Definition-1 violations (feedback may only remove covered
  // tuples).
  int missing_uncovered = 0;
  // Tuples in S that never appeared in S_R — violations (exploitation
  // must not invent results).
  int extra = 0;
  // Tuples covered by f that were suppressed — legitimate exploitation
  // (0 for a null response, |subset(S_R,f)| for maximum exploitation).
  int suppressed = 0;
  // |subset(S_R, f)| — how much the feedback covered at all.
  int covered_in_baseline = 0;

  std::string ToString() const;
};

/// Multiset comparison of `exploited` against `baseline` under
/// feedback pattern `f` (order-insensitive; stream operators may
/// legitimately reorder).
ExploitationCheck CheckCorrectExploitation(
    const std::vector<Tuple>& baseline,
    const std::vector<Tuple>& exploited, const PunctPattern& f);

}  // namespace nstream

#endif  // NSTREAM_CORE_CORRECTNESS_H_
