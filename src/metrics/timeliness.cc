#include "metrics/timeliness.h"

#include "common/string_util.h"

namespace nstream {

std::string TimelinessReport::Summary() const {
  return StringPrintf(
      "clean=%llu imputed=%llu/%llu delivered, %llu timely, "
      "dropped_or_late=%.1f%%",
      static_cast<unsigned long long>(clean_delivered),
      static_cast<unsigned long long>(imputed_delivered),
      static_cast<unsigned long long>(total_expected_imputed),
      static_cast<unsigned long long>(imputed_timely),
      100.0 * imputed_dropped_or_late_fraction());
}

TimelinessReport AnalyzeTimeliness(
    const std::vector<CollectedTuple>& collected,
    const TimelinessOptions& options) {
  TimelinessReport report;
  report.total_expected_imputed = options.total_expected_imputed;
  for (const CollectedTuple& ct : collected) {
    SeriesPoint pt;
    pt.tuple_id = ct.tuple.id();
    Result<int64_t> ts = ct.tuple.value(options.ts_attr).AsInt64();
    pt.app_ts = ts.ok() ? ts.value() : 0;
    pt.out_ms = ct.out_ms;
    pt.lag_ms = pt.out_ms - pt.app_ts;

    bool imputed = false;
    if (options.flag_attr >= 0 &&
        options.flag_attr < ct.tuple.size()) {
      Result<int64_t> flag =
          ct.tuple.value(options.flag_attr).AsInt64();
      imputed = flag.ok() && flag.value() != 0;
    }
    if (imputed) {
      ++report.imputed_delivered;
      if (pt.lag_ms <= options.tolerance_ms) ++report.imputed_timely;
      report.imputed.push_back(pt);
    } else {
      ++report.clean_delivered;
      report.clean.push_back(pt);
    }
  }
  return report;
}

std::string SeriesCsv(const TimelinessReport& report) {
  std::string out = "series,tuple_id,out_s\n";
  for (const SeriesPoint& p : report.clean) {
    out += StringPrintf("clean,%lld,%.3f\n",
                        static_cast<long long>(p.tuple_id),
                        static_cast<double>(p.out_ms) / 1000.0);
  }
  for (const SeriesPoint& p : report.imputed) {
    out += StringPrintf("imputed,%lld,%.3f\n",
                        static_cast<long long>(p.tuple_id),
                        static_cast<double>(p.out_ms) / 1000.0);
  }
  return out;
}

}  // namespace nstream
