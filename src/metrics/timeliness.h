// TimelinessTracker: the Experiment 1 measurement harness. Consumes a
// CollectorSink's (tuple, output time) records, splits them into
// series (clean vs imputed), and computes the paper's metric — the
// fraction of tuples that were timely (output no later than
// `tolerance` after the stream's progress point) vs dropped/late.

#ifndef NSTREAM_METRICS_TIMELINESS_H_
#define NSTREAM_METRICS_TIMELINESS_H_

#include <string>
#include <vector>

#include "common/clock.h"
#include "ops/sink.h"

namespace nstream {

/// One point of a Fig. 5/6-style output-pattern series.
struct SeriesPoint {
  int64_t tuple_id = 0;
  TimeMs app_ts = 0;   // application timestamp in the tuple
  TimeMs out_ms = 0;   // system time the sink saw it
  TimeMs lag_ms = 0;   // out_ms - arrival-aligned expectation
};

struct TimelinessReport {
  std::vector<SeriesPoint> clean;
  std::vector<SeriesPoint> imputed;
  uint64_t total_expected_imputed = 0;  // dirty tuples entering the plan
  uint64_t imputed_delivered = 0;
  uint64_t imputed_timely = 0;
  uint64_t clean_delivered = 0;

  /// Fraction of expected imputed tuples that never arrived or arrived
  /// beyond the tolerance — the paper's "% dropped" (97% without
  /// feedback, 29% with feedback).
  double imputed_dropped_or_late_fraction() const {
    if (total_expected_imputed == 0) return 0;
    return 1.0 - static_cast<double>(imputed_timely) /
                     static_cast<double>(total_expected_imputed);
  }

  std::string Summary() const;
};

struct TimelinessOptions {
  int ts_attr = 1;      // application timestamp position
  int flag_attr = 3;    // "imputed" flag position
  TimeMs tolerance_ms = 5'000;
  uint64_t total_expected_imputed = 0;
};

/// Build the report from a sink's collected output. A tuple is timely
/// when its output time is within `tolerance` of its application
/// timestamp (output and arrival share the virtual clock under the
/// SimExecutor, so lag = out_ms - app_ts).
TimelinessReport AnalyzeTimeliness(
    const std::vector<CollectedTuple>& collected,
    const TimelinessOptions& options);

/// Render a Fig. 5/6-style series as CSV ("series,tuple_id,out_s").
std::string SeriesCsv(const TimelinessReport& report);

}  // namespace nstream

#endif  // NSTREAM_METRICS_TIMELINESS_H_
