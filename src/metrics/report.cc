#include "metrics/report.h"

#include <algorithm>

namespace nstream {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TextTable::AddRow(std::vector<std::string> cells) {
  cells.resize(header_.size());
  rows_.push_back(std::move(cells));
}

std::string TextTable::Render() const {
  std::vector<size_t> widths(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
    for (const auto& row : rows_) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto render_row = [&](const std::vector<std::string>& row) {
    std::string out = "|";
    for (size_t c = 0; c < row.size(); ++c) {
      out += " " + row[c] +
             std::string(widths[c] - row[c].size(), ' ') + " |";
    }
    return out + "\n";
  };
  std::string out = render_row(header_);
  std::string sep = "|";
  for (size_t c = 0; c < header_.size(); ++c) {
    sep += std::string(widths[c] + 2, '-') + "|";
  }
  out += sep + "\n";
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

std::string ExperimentBanner(const std::string& id,
                             const std::string& description) {
  std::string bar(72, '=');
  return bar + "\n" + id + ": " + description + "\n" + bar + "\n";
}

}  // namespace nstream
