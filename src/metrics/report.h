// Small table/report rendering helpers shared by benches so every
// table/figure reproduction prints in a uniform, diffable format with
// the paper's reported values alongside.

#ifndef NSTREAM_METRICS_REPORT_H_
#define NSTREAM_METRICS_REPORT_H_

#include <string>
#include <vector>

namespace nstream {

/// A fixed-width text table.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void AddRow(std::vector<std::string> cells);
  std::string Render() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Banner for an experiment reproduction section.
std::string ExperimentBanner(const std::string& id,
                             const std::string& description);

}  // namespace nstream

#endif  // NSTREAM_METRICS_REPORT_H_
