#include "workload/auction.h"

#include <algorithm>

#include "common/rng.h"

namespace nstream {

SchemaPtr AuctionSchema() {
  static SchemaPtr schema = Schema::Make({
      {"auction", ValueType::kInt64},
      {"bidder", ValueType::kInt64},
      {"amount", ValueType::kDouble},
      {"timestamp", ValueType::kTimestamp},
  });
  return schema;
}

PunctScheme AuctionPunctScheme() {
  return PunctScheme::Undelimited(4)
      .With(kBidAuction, Delimitation::kFinite)
      .With(kBidTimestamp, Delimitation::kProgressing);
}

std::vector<TimedElement> GenerateAuctionStream(
    const AuctionConfig& config) {
  Rng rng(config.seed);
  std::vector<TimedElement> out;

  struct Bid {
    TimeMs ts;
    int auction;
    int bidder;
    double amount;
  };
  std::vector<Bid> bids;
  std::vector<TimeMs> auction_end(
      static_cast<size_t>(config.num_auctions));
  for (int a = 0; a < config.num_auctions; ++a) {
    TimeMs start = static_cast<TimeMs>(a) * config.stagger_ms;
    TimeMs end = start + config.auction_duration_ms;
    auction_end[static_cast<size_t>(a)] = end;
    double price = config.min_bid;
    for (int b = 0; b < config.bids_per_auction; ++b) {
      price += rng.NextDouble(0.1, 5.0);  // bids only go up
      Bid bid;
      bid.ts = start + static_cast<TimeMs>(rng.NextBounded(
                           static_cast<uint64_t>(
                               config.auction_duration_ms)));
      bid.auction = a;
      bid.bidder = static_cast<int>(
          rng.NextBounded(static_cast<uint64_t>(config.num_bidders)));
      bid.amount = price;
      bids.push_back(bid);
    }
  }
  std::sort(bids.begin(), bids.end(),
            [](const Bid& a, const Bid& b) { return a.ts < b.ts; });

  TimeMs last_punct = 0;
  size_t next_close = 0;
  std::vector<int> close_order(static_cast<size_t>(config.num_auctions));
  for (int a = 0; a < config.num_auctions; ++a) {
    close_order[static_cast<size_t>(a)] = a;
  }
  std::sort(close_order.begin(), close_order.end(), [&](int a, int b) {
    return auction_end[static_cast<size_t>(a)] <
           auction_end[static_cast<size_t>(b)];
  });

  for (const Bid& bid : bids) {
    // Close punctuations for auctions that ended before this bid.
    while (next_close < close_order.size() &&
           auction_end[static_cast<size_t>(
               close_order[next_close])] <= bid.ts) {
      int a = close_order[next_close++];
      PunctPattern p = PunctPattern::AllWildcard(4);
      p = p.With(kBidAuction,
                 AttrPattern::Eq(Value::Int64(a)));
      out.push_back(TimedElement::OfPunct(
          auction_end[static_cast<size_t>(a)],
          Punctuation(std::move(p))));
    }
    Tuple t;
    t.Append(Value::Int64(bid.auction));
    t.Append(Value::Int64(bid.bidder));
    t.Append(Value::Double(bid.amount));
    t.Append(Value::Timestamp(bid.ts));
    out.push_back(TimedElement::OfTuple(bid.ts, std::move(t)));

    if (bid.ts - last_punct >= config.punct_every_ms) {
      PunctPattern p = PunctPattern::AllWildcard(4);
      p = p.With(kBidTimestamp,
                 AttrPattern::Le(Value::Timestamp(bid.ts)));
      out.push_back(
          TimedElement::OfPunct(bid.ts, Punctuation(std::move(p))));
      last_punct = bid.ts;
    }
  }
  // Remaining close punctuations.
  while (next_close < close_order.size()) {
    int a = close_order[next_close++];
    PunctPattern p = PunctPattern::AllWildcard(4);
    p = p.With(kBidAuction, AttrPattern::Eq(Value::Int64(a)));
    out.push_back(TimedElement::OfPunct(
        auction_end[static_cast<size_t>(a)], Punctuation(std::move(p))));
  }
  return out;
}

}  // namespace nstream
