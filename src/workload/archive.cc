#include "workload/archive.h"

#include <cmath>

namespace nstream {

ArchiveStore::ArchiveStore(ArchiveConfig config)
    : config_(config),
      buckets_per_day_(
          static_cast<int>(86'400'000 / config.bucket_ms)) {
  Rng rng(config_.seed);
  history_.resize(static_cast<size_t>(config_.num_detectors));
  for (int d = 0; d < config_.num_detectors; ++d) {
    auto& row = history_[static_cast<size_t>(d)];
    row.reserve(static_cast<size_t>(buckets_per_day_));
    double detector_bias = rng.NextGaussian(0, 3.0);
    for (int b = 0; b < buckets_per_day_; ++b) {
      double day_frac = static_cast<double>(b) / buckets_per_day_;
      double dip =
          config_.daily_dip_mph *
          0.5 * (1.0 + std::sin(2 * 3.14159265358979 * (2 * day_frac)));
      row.push_back(config_.free_flow_mph - dip + detector_bias +
                    rng.NextGaussian(0, config_.noise_stddev));
    }
  }
}

double ArchiveStore::Estimate(int64_t detector, TimeMs ts) const {
  ++queries_;
  int64_t d = detector % config_.num_detectors;
  if (d < 0) d += config_.num_detectors;
  const auto& row = history_[static_cast<size_t>(d)];
  int bucket = static_cast<int>((ts % 86'400'000) / config_.bucket_ms);
  double sum = 0;
  int n = 0;
  for (int k = -(config_.k_neighbors / 2);
       k <= config_.k_neighbors / 2; ++k) {
    int b = (bucket + k + buckets_per_day_) % buckets_per_day_;
    sum += row[static_cast<size_t>(b)];
    ++n;
  }
  return n > 0 ? sum / n : config_.free_flow_mph;
}

}  // namespace nstream
