#include "workload/pipelines.h"

#include "common/logging.h"
#include "ops/callback_source.h"
#include "ops/vector_source.h"

namespace nstream {

ImputationPlan BuildImputationPlan(const ImputationPlanConfig& config) {
  ImputationPlan out;
  out.plan = std::make_unique<QueryPlan>();
  QueryPlan& plan = *out.plan;

  std::vector<TimedElement> stream =
      GenerateImputationStream(config.stream);
  for (const TimedElement& te : stream) {
    if (te.element.is_tuple() &&
        te.element.tuple().value(kImpSpeed).is_null()) {
      ++out.expected_dirty;
    }
  }

  auto* source = plan.AddOp(std::make_unique<VectorSource>(
      "sensor-stream", ImputationSchema(), std::move(stream)));

  out.duplicate =
      plan.AddOp(std::make_unique<Duplicate>("duplicate", 2));

  // σC: clean tuples (speed present); σ¬C: dirty tuples (speed NULL).
  PunctPattern clean_p = PunctPattern::AllWildcard(4).With(
      kImpSpeed, AttrPattern::NotNull());
  PunctPattern dirty_p = PunctPattern::AllWildcard(4).With(
      kImpSpeed, AttrPattern::IsNull());
  out.clean_filter =
      plan.AddOp(Select::FromPattern("sigma-clean", clean_p));
  out.dirty_filter =
      plan.AddOp(Select::FromPattern("sigma-dirty", dirty_p));

  out.archive_keepalive = std::make_shared<ArchiveStore>(ArchiveConfig{
      .num_detectors = config.stream.num_detectors});
  out.archive = out.archive_keepalive.get();
  ArchiveStore* archive = out.archive;
  ImputeOptions impute_options;
  impute_options.value_attr = kImpSpeed;
  impute_options.flag_attr = kImpFlag;
  impute_options.cost_ms = config.impute_cost_ms;
  out.impute = plan.AddOp(std::make_unique<Impute>(
      "impute",
      [archive](const Tuple& t) {
        Result<int64_t> det = t.value(kImpDetector).AsInt64();
        Result<int64_t> ts = t.value(kImpTimestamp).AsInt64();
        return archive->Estimate(det.ok() ? det.value() : 0,
                                 ts.ok() ? ts.value() : 0);
      },
      impute_options));

  PaceOptions pace_options;
  pace_options.ts_attr = kImpTimestamp;
  pace_options.tolerance_ms = config.tolerance_ms;
  pace_options.feedback_min_advance_ms = config.feedback_min_advance_ms;
  pace_options.mode = config.feedback_enabled
                          ? PaceMode::kDropAndFeedback
                          : PaceMode::kUnionOnly;
  if (config.feedback_to_impute_only) {
    pace_options.feedback_inputs = {1};
  }
  out.pace =
      plan.AddOp(std::make_unique<Pace>("pace", 2, pace_options));

  out.sink = plan.AddOp(std::make_unique<CollectorSink>("sink"));

  NSTREAM_CHECK(plan.Connect(*source, *out.duplicate).ok());
  NSTREAM_CHECK(
      plan.Connect(*out.duplicate, 0, *out.clean_filter, 0).ok());
  NSTREAM_CHECK(
      plan.Connect(*out.duplicate, 1, *out.dirty_filter, 0).ok());
  NSTREAM_CHECK(plan.Connect(*out.dirty_filter, *out.impute).ok());
  NSTREAM_CHECK(plan.Connect(*out.clean_filter, 0, *out.pace, 0).ok());
  NSTREAM_CHECK(plan.Connect(*out.impute, 0, *out.pace, 1).ok());
  NSTREAM_CHECK(plan.Connect(*out.pace, *out.sink).ok());
  NSTREAM_CHECK(plan.Finalize().ok());
  return out;
}

SpeedmapPlan BuildSpeedmapPlan(const SpeedmapPlanConfig& config) {
  SpeedmapPlan out;
  out.plan = std::make_unique<QueryPlan>();
  QueryPlan& plan = *out.plan;

  auto gen = std::make_shared<TrafficGen>(config.traffic);
  auto* source = plan.AddOp(std::make_unique<CallbackSource>(
      "traffic", DetectorSchema(),
      [gen]() { return gen->Next(); }));

  // σQ: keep plausible readings only (drops NULLs and garbage).
  PunctPattern quality = PunctPattern::AllWildcard(4).With(
      kDetSpeed, AttrPattern::Ge(Value::Double(0.0)));
  SelectOptions sel_options;
  // σQ exploits whatever reaches it; under F0-F2 nothing does.
  sel_options.feedback_policy = FeedbackPolicy::kExploitAndPropagate;
  out.quality_filter = plan.AddOp(
      Select::FromPattern("sigma-quality", quality, sel_options));

  WindowAggregateOptions agg;
  agg.ts_attr = kDetTimestamp;
  agg.group_attrs = {kDetSegment};
  agg.agg_attr = kDetSpeed;
  agg.kind = AggKind::kAvg;
  agg.window = config.window;
  agg.feedback_policy = config.scheme;
  agg.work_iters_per_update = config.agg_work_iters;
  out.average = plan.AddOp(
      std::make_unique<WindowAggregate>("average", agg));

  ViewerConfig viewer;
  viewer.num_segments = config.traffic.num_segments;
  viewer.switch_every_ms = config.switch_every_ms;
  CollectorSinkOptions sink_options;
  sink_options.record_tuples = config.record_sink_tuples;
  sink_options.work_iters_per_tuple = config.sink_work_iters;
  out.sink = plan.AddOp(std::make_unique<CollectorSink>(
      "viewer-sink", sink_options,
      config.scheme == FeedbackPolicy::kIgnore
          ? CollectorSink::FeedbackDriver(nullptr)
          : MakeViewerDriver(viewer)));

  NSTREAM_CHECK(plan.Connect(*source, *out.quality_filter).ok());
  NSTREAM_CHECK(
      plan.Connect(*out.quality_filter, *out.average).ok());
  NSTREAM_CHECK(plan.Connect(*out.average, *out.sink).ok());
  NSTREAM_CHECK(plan.Finalize().ok());
  return out;
}

}  // namespace nstream
