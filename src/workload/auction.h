// Auction workload for the §4.4 supportability examples: bids carry a
// progressing timestamp (delimited), auction ids with finite lifetimes
// (delimited via close punctuations), and unbounded bid amounts (NOT
// delimited — feedback on amounts leaves unreclaimable state, which
// the supportability check must flag).

#ifndef NSTREAM_WORKLOAD_AUCTION_H_
#define NSTREAM_WORKLOAD_AUCTION_H_

#include <vector>

#include "ops/vector_source.h"
#include "punct/scheme.h"
#include "types/schema.h"

namespace nstream {

/// (auction, bidder, amount, timestamp).
SchemaPtr AuctionSchema();
inline constexpr int kBidAuction = 0;
inline constexpr int kBidBidder = 1;
inline constexpr int kBidAmount = 2;
inline constexpr int kBidTimestamp = 3;

/// The punctuation scheme the bid stream actually carries: timestamp
/// progresses, auctions close; bidders and amounts are never
/// punctuated.
PunctScheme AuctionPunctScheme();

struct AuctionConfig {
  int num_auctions = 20;
  int num_bidders = 50;
  int bids_per_auction = 60;
  TimeMs auction_duration_ms = 120'000;
  TimeMs stagger_ms = 30'000;  // auction start spacing
  double min_bid = 1.0;
  TimeMs punct_every_ms = 10'000;
  uint64_t seed = 5;
};

/// Arrival-ordered bids with two kinds of embedded punctuation:
/// timestamp watermarks and per-auction close punctuations
/// ([auction,*,*,*] after an auction's last bid).
std::vector<TimedElement> GenerateAuctionStream(
    const AuctionConfig& config);

}  // namespace nstream

#endif  // NSTREAM_WORKLOAD_AUCTION_H_
