// Canonical experiment pipelines (the query plans of Fig. 4), built
// once and shared by integration tests, benches, and examples.
//
//   Imputation plan (Fig. 4a):  DUPLICATE → σC / σ¬C → IMPUTE → PACE
//   Speed-map plan  (Fig. 4b):  σQ → AVERAGE → (viewer sink)

#ifndef NSTREAM_WORKLOAD_PIPELINES_H_
#define NSTREAM_WORKLOAD_PIPELINES_H_

#include <memory>

#include "core/feedback_policy.h"
#include "exec/query_plan.h"
#include "ops/duplicate.h"
#include "ops/impute.h"
#include "ops/pace.h"
#include "ops/select.h"
#include "ops/sink.h"
#include "ops/window_aggregate.h"
#include "workload/archive.h"
#include "workload/imputation.h"
#include "workload/traffic.h"
#include "workload/viewer.h"

namespace nstream {

// ---------------------------------------------------------------------
// Experiment 1: the imputation plan (Figs. 5 and 6).
// ---------------------------------------------------------------------

struct ImputationPlanConfig {
  ImputationConfig stream;
  // The archival lookup latency charged per dirty tuple. Chosen so the
  // imputation branch cannot keep up: dirty tuples arrive every
  // 2*inter_arrival_ms = 80 ms but take ~112 ms to impute, giving the
  // paper's steady-state drop rate of ~29% under feedback (1 - 80/112)
  // and near-total lateness without it.
  double impute_cost_ms = 112.0;
  // PACE's tolerated divergence between branches.
  TimeMs tolerance_ms = 5'000;
  // PACE re-issues feedback only after the watermark advanced this far
  // past the last issued bound. Short streams (virtual-time tests)
  // need a cadence far below the 1s default or the single allowed
  // round can miss the in-flight backlog entirely.
  TimeMs feedback_min_advance_ms = 1'000;
  bool feedback_enabled = true;
  // Send feedback only to the imputed branch (the paper's setup).
  bool feedback_to_impute_only = true;
};

struct ImputationPlan {
  std::unique_ptr<QueryPlan> plan;
  ArchiveStore* archive = nullptr;  // owned via keepalive below
  Duplicate* duplicate = nullptr;
  Select* clean_filter = nullptr;
  Select* dirty_filter = nullptr;
  Impute* impute = nullptr;
  Pace* pace = nullptr;
  CollectorSink* sink = nullptr;
  uint64_t expected_dirty = 0;

  std::shared_ptr<ArchiveStore> archive_keepalive;
};

ImputationPlan BuildImputationPlan(const ImputationPlanConfig& config);

// ---------------------------------------------------------------------
// Experiment 2: the speed-map plan (Fig. 7).
// ---------------------------------------------------------------------

struct SpeedmapPlanConfig {
  TrafficConfig traffic;
  // F0..F3 (Fig. 7's schemes) applied to AVERAGE; σQ exploits only
  // under F3 (it receives feedback only when AVERAGE propagates).
  FeedbackPolicy scheme = FeedbackPolicy::kExploitAndPropagate;
  // Viewer switch cadence (Fig. 7's 2/4/6-minute frequency axis).
  TimeMs switch_every_ms = 120'000;
  WindowSpec window{60'000, 60'000};
  // Real per-result "rendering" work at the sink (wall-clock benches).
  int sink_work_iters = 0;
  // Real per-update work inside AVERAGE (cost calibration; see
  // EXPERIMENTS.md).
  int agg_work_iters = 0;
  bool record_sink_tuples = false;
};

struct SpeedmapPlan {
  std::unique_ptr<QueryPlan> plan;
  Select* quality_filter = nullptr;
  WindowAggregate* average = nullptr;
  CollectorSink* sink = nullptr;
};

SpeedmapPlan BuildSpeedmapPlan(const SpeedmapPlanConfig& config);

}  // namespace nstream

#endif  // NSTREAM_WORKLOAD_PIPELINES_H_
