#include "workload/traffic.h"

#include <algorithm>
#include <cmath>

namespace nstream {

SchemaPtr DetectorSchema() {
  static SchemaPtr schema = Schema::Make({
      {"segment", ValueType::kInt64},
      {"detector", ValueType::kInt64},
      {"timestamp", ValueType::kTimestamp},
      {"speed", ValueType::kDouble},
  });
  return schema;
}

SchemaPtr ProbeSchema() {
  static SchemaPtr schema = Schema::Make({
      {"vehicle", ValueType::kInt64},
      {"segment", ValueType::kInt64},
      {"timestamp", ValueType::kTimestamp},
      {"speed", ValueType::kDouble},
  });
  return schema;
}

TrafficGen::TrafficGen(TrafficConfig config)
    : config_(config), rng_(config.seed) {
  segment_phase_.reserve(static_cast<size_t>(config_.num_segments));
  segment_depth_.reserve(static_cast<size_t>(config_.num_segments));
  for (int s = 0; s < config_.num_segments; ++s) {
    segment_phase_.push_back(rng_.NextDouble(0.0, 1.0));
    segment_depth_.push_back(rng_.NextDouble(0.35, 1.0));
  }
  BuildTickBuffer();
}

void TrafficGen::Reset() {
  rng_ = Rng(config_.seed);
  // Re-draw the same per-segment profile (same seed → same values).
  segment_phase_.clear();
  segment_depth_.clear();
  for (int s = 0; s < config_.num_segments; ++s) {
    segment_phase_.push_back(rng_.NextDouble(0.0, 1.0));
    segment_depth_.push_back(rng_.NextDouble(0.35, 1.0));
  }
  current_tick_ = 0;
  tick_buffer_.clear();
  tick_pos_ = 0;
  last_punct_ = 0;
  tuples_emitted_ = 0;
  done_ = false;
  BuildTickBuffer();
}

double TrafficGen::MeanSpeed(int segment, TimeMs ts) const {
  // Two rush-hour humps per simulated day, phase-shifted per segment.
  double day_frac =
      static_cast<double>(ts % 86'400'000) / 86'400'000.0;
  double phase = segment_phase_[static_cast<size_t>(segment)];
  double wave =
      0.5 * (1.0 + std::sin(2.0 * 3.14159265358979 *
                            (2.0 * day_frac + phase)));
  double depth = segment_depth_[static_cast<size_t>(segment)];
  double congestion = depth * wave * wave;  // sharpen the peaks
  return config_.free_flow_mph -
         (config_.free_flow_mph - config_.congested_mph) * congestion;
}

bool TrafficGen::IsCongested(int segment, TimeMs ts) const {
  return MeanSpeed(segment, ts) < 45.0;  // the paper's 45 MPH rule
}

void TrafficGen::BuildTickBuffer() {
  tick_buffer_.clear();
  tick_pos_ = 0;
  if (current_tick_ >= config_.duration_ms) {
    done_ = true;
    return;
  }
  TimeMs ts = current_tick_;
  for (int s = 0; s < config_.num_segments; ++s) {
    for (int d = 0; d < config_.detectors_per_segment; ++d) {
      double speed =
          MeanSpeed(s, ts) + rng_.NextGaussian(0, config_.noise_stddev);
      speed = std::max(1.0, speed);
      Value speed_value = Value::Double(speed);
      if (config_.null_prob > 0 && rng_.NextBernoulli(config_.null_prob)) {
        speed_value = Value::Null();
      } else if (config_.bad_prob > 0 &&
                 rng_.NextBernoulli(config_.bad_prob)) {
        speed_value = Value::Double(-1.0);  // garbage σQ must drop
      }
      Tuple t;
      t.Append(Value::Int64(s));
      t.Append(
          Value::Int64(s * config_.detectors_per_segment + d));
      t.Append(Value::Timestamp(ts));
      t.Append(std::move(speed_value));
      TimeMs arrival = ts;
      if (config_.ooo_jitter_ms > 0) {
        arrival += static_cast<TimeMs>(
            rng_.NextBounded(static_cast<uint64_t>(config_.ooo_jitter_ms)));
      }
      tick_buffer_.push_back(TimedElement::OfTuple(arrival, std::move(t)));
    }
  }
  // Punctuation: all readings with ts <= bound have been generated once
  // the jitter horizon passes.
  if (ts - last_punct_ >= config_.punct_every_ms) {
    PunctPattern p = PunctPattern::AllWildcard(4);
    p = p.With(kDetTimestamp, AttrPattern::Le(Value::Timestamp(ts)));
    tick_buffer_.push_back(TimedElement::OfPunct(
        ts + config_.ooo_jitter_ms, Punctuation(std::move(p))));
    last_punct_ = ts;
  }
  std::stable_sort(tick_buffer_.begin(), tick_buffer_.end(),
                   [](const TimedElement& a, const TimedElement& b) {
                     return a.arrival_ms < b.arrival_ms;
                   });
  current_tick_ += config_.tick_ms;
}

std::optional<TimedElement> TrafficGen::Next() {
  while (!done_ && tick_pos_ >= tick_buffer_.size()) {
    BuildTickBuffer();
  }
  if (done_ && tick_pos_ >= tick_buffer_.size()) return std::nullopt;
  TimedElement out = std::move(tick_buffer_[tick_pos_++]);
  if (out.element.is_tuple()) ++tuples_emitted_;
  return out;
}

std::vector<TimedElement> GenerateTraffic(const TrafficConfig& config) {
  TrafficGen gen(config);
  std::vector<TimedElement> out;
  while (auto e = gen.Next()) out.push_back(std::move(*e));
  return out;
}

std::vector<TimedElement> GenerateProbes(const ProbeConfig& config,
                                         const TrafficGen* truth) {
  Rng rng(config.seed);
  std::vector<TimedElement> out;
  // Decide per (segment, minute) coverage up front so empty windows
  // exist by construction (THRIFTY JOIN's trigger).
  int64_t minutes = config.duration_ms / 60'000 + 1;
  std::vector<bool> covered(
      static_cast<size_t>(config.num_segments * minutes));
  for (size_t i = 0; i < covered.size(); ++i) {
    covered[i] = rng.NextBernoulli(config.coverage);
  }
  for (TimeMs ts = 0; ts < config.duration_ms;
       ts += config.report_every_ms) {
    bool outage = false;
    if (config.outage_period_min > 0) {
      int64_t minute = ts / 60'000;
      outage = minute % config.outage_period_min <
               config.outage_len_min;
    }
    for (int v = 0; outage ? false : v < config.num_vehicles; ++v) {
      int segment =
          static_cast<int>(rng.NextBounded(
              static_cast<uint64_t>(config.num_segments)));
      int64_t minute = ts / 60'000;
      if (!covered[static_cast<size_t>(segment * minutes + minute)]) {
        continue;  // vehicles avoid uncovered cells
      }
      double base = truth != nullptr
                        ? truth->MeanSpeed(segment, ts)
                        : 45.0;
      Tuple t;
      t.Append(Value::Int64(v));
      t.Append(Value::Int64(segment));
      t.Append(Value::Timestamp(ts));
      t.Append(Value::Double(
          std::max(1.0, base + rng.NextGaussian(0, config.noise_stddev))));
      out.push_back(TimedElement::OfTuple(ts, std::move(t)));
    }
    bool minute_edge = (ts % 60'000) + config.report_every_ms >= 60'000;
    if (config.punct_every_ms > 0 && minute_edge) {
      PunctPattern p = PunctPattern::AllWildcard(4);
      p = p.With(kProbeTimestamp, AttrPattern::Le(Value::Timestamp(ts)));
      out.push_back(
          TimedElement::OfPunct(ts, Punctuation(std::move(p))));
    }
  }
  return out;
}

}  // namespace nstream
