// ArchiveStore: the in-memory stand-in for the archival database that
// IMPUTE queries once per dirty tuple in Experiment 1 (substitution
// documented in DESIGN.md). Holds per-(detector, time-of-day bucket)
// historical mean speeds; Estimate answers "what does a reading from
// this detector at this time of day usually look like" by averaging
// the k nearest buckets. Lookups count queries so experiments can
// report work avoided.

#ifndef NSTREAM_WORKLOAD_ARCHIVE_H_
#define NSTREAM_WORKLOAD_ARCHIVE_H_

#include <cstdint>
#include <vector>

#include "common/clock.h"
#include "common/rng.h"

namespace nstream {

struct ArchiveConfig {
  int num_detectors = 360;
  TimeMs bucket_ms = 300'000;  // 5-minute historical buckets
  double free_flow_mph = 60.0;
  double daily_dip_mph = 25.0;  // rush-hour depression
  double noise_stddev = 2.0;
  int k_neighbors = 3;
  uint64_t seed = 7;
};

class ArchiveStore {
 public:
  explicit ArchiveStore(ArchiveConfig config = {});

  /// The "archival query": estimate the speed at `detector` around
  /// application time `ts`.
  double Estimate(int64_t detector, TimeMs ts) const;

  uint64_t queries() const { return queries_; }
  int num_buckets() const { return buckets_per_day_; }

 private:
  ArchiveConfig config_;
  int buckets_per_day_;
  // [detector][bucket] historical mean.
  std::vector<std::vector<double>> history_;
  mutable uint64_t queries_ = 0;
};

}  // namespace nstream

#endif  // NSTREAM_WORKLOAD_ARCHIVE_H_
