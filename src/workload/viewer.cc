#include "workload/viewer.h"

#include <memory>

namespace nstream {

CollectorSink::FeedbackDriver MakeViewerDriver(ViewerConfig config) {
  // State shared across invocations of the driver.
  auto last_interval = std::make_shared<int64_t>(-1);
  return [config, last_interval](
             const Tuple& t, TimeMs) -> std::vector<FeedbackPunctuation> {
    Result<int64_t> we = t.value(config.window_end_attr).AsInt64();
    if (!we.ok()) return {};
    // A window belongs to the interval containing its start.
    int64_t interval =
        (we.value() - config.window_range_ms) / config.switch_every_ms;
    if (interval == *last_interval) return {};
    *last_interval = interval;

    // A real viewer switches on wall time, ahead of the data; emitting
    // feedback for the current *and* the next interval models that
    // head start (otherwise every interval's first window would always
    // be computed before the feedback lands).
    std::vector<FeedbackPunctuation> out;
    for (int64_t k = interval; k <= interval + 1; ++k) {
      TimeMs lo = k * config.switch_every_ms;
      int visible = VisibleSegmentAt(config, lo);
      // Windows starting inside [lo, lo+switch) have ends in
      // [lo+range, lo+switch+range).
      PunctPattern p = PunctPattern::AllWildcard(config.out_arity);
      p = p.With(config.window_end_attr,
                 AttrPattern::Range(
                     Value::Timestamp(lo + config.window_range_ms),
                     Value::Timestamp(lo + config.switch_every_ms +
                                      config.window_range_ms - 1)));
      p = p.With(config.segment_attr,
                 AttrPattern::Ne(Value::Int64(visible)));
      out.push_back(FeedbackPunctuation::Assumed(std::move(p)));
    }
    return out;
  };
}

}  // namespace nstream
