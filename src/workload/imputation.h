// Experiment 1 workload: a sensor stream in which dirty (NULL-speed)
// tuples alternate with clean ones — the paper's "extreme case" — so
// the imputation branch receives a steady 50% of the input. Schema
// carries an `imputed` flag (set by IMPUTE) so the harness can split
// Fig. 5/6 series into clean vs imputed.

#ifndef NSTREAM_WORKLOAD_IMPUTATION_H_
#define NSTREAM_WORKLOAD_IMPUTATION_H_

#include <vector>

#include "ops/vector_source.h"
#include "types/schema.h"

namespace nstream {

/// (detector, timestamp, speed, imputed).
SchemaPtr ImputationSchema();
inline constexpr int kImpDetector = 0;
inline constexpr int kImpTimestamp = 1;
inline constexpr int kImpSpeed = 2;
inline constexpr int kImpFlag = 3;

struct ImputationConfig {
  int num_tuples = 5'000;          // the paper's run length
  TimeMs inter_arrival_ms = 40;    // 5 000 tuples over ~200 s
  bool alternate = true;           // strict clean/dirty alternation
  double dirty_fraction = 0.5;     // used when alternate == false
  int num_detectors = 40;
  double clean_speed_mph = 55.0;
  double noise_stddev = 4.0;
  TimeMs punct_every_ms = 1'000;
  uint64_t seed = 99;
};

std::vector<TimedElement> GenerateImputationStream(
    const ImputationConfig& config);

}  // namespace nstream

#endif  // NSTREAM_WORKLOAD_IMPUTATION_H_
