// Traffic workloads: synthetic stand-ins for the Portland fixed-sensor
// and probe-vehicle feeds the paper's scenarios are built around
// (substitution documented in DESIGN.md). Deterministic given the
// seed; congestion follows per-segment rush-hour profiles so
// "congested segment" predicates have realistic spatial/temporal
// structure.

#ifndef NSTREAM_WORKLOAD_TRAFFIC_H_
#define NSTREAM_WORKLOAD_TRAFFIC_H_

#include <optional>
#include <vector>

#include "common/rng.h"
#include "ops/vector_source.h"
#include "types/schema.h"

namespace nstream {

/// Fixed-sensor schema: (segment, detector, timestamp, speed).
SchemaPtr DetectorSchema();
/// Attribute positions in DetectorSchema.
inline constexpr int kDetSegment = 0;
inline constexpr int kDetDetector = 1;
inline constexpr int kDetTimestamp = 2;
inline constexpr int kDetSpeed = 3;

struct TrafficConfig {
  int num_segments = 9;
  int detectors_per_segment = 40;
  TimeMs tick_ms = 20'000;        // one report per detector per tick
  TimeMs duration_ms = 3'600'000; // Experiment 2 uses 18h
  double free_flow_mph = 62.0;
  double congested_mph = 22.0;
  double noise_stddev = 3.5;
  // Probability a reading is NULL (sensor dropout; Experiment 1 fodder).
  double null_prob = 0.0;
  // Probability a reading is garbage (negative speed; σQ drops it).
  double bad_prob = 0.0;
  // Embedded punctuation cadence on the timestamp attribute.
  TimeMs punct_every_ms = 60'000;
  // Max arrival jitter (out-of-order arrival); punctuation is emitted
  // only once the jitter horizon has safely passed.
  TimeMs ooo_jitter_ms = 0;
  uint64_t seed = 42;
};

/// Pull-based generator (use with CallbackSource for large runs).
class TrafficGen {
 public:
  explicit TrafficGen(TrafficConfig config);

  std::optional<TimedElement> Next();
  void Reset();

  /// Ground truth used by tests: is `segment` congested at `ts`?
  bool IsCongested(int segment, TimeMs ts) const;
  /// Mean speed (pre-noise) for a segment at a time.
  double MeanSpeed(int segment, TimeMs ts) const;

  uint64_t tuples_emitted() const { return tuples_emitted_; }

 private:
  void BuildTickBuffer();

  TrafficConfig config_;
  Rng rng_;
  std::vector<double> segment_phase_;   // rush-hour offset per segment
  std::vector<double> segment_depth_;   // congestion severity 0..1
  TimeMs current_tick_ = 0;
  std::vector<TimedElement> tick_buffer_;
  size_t tick_pos_ = 0;
  TimeMs last_punct_ = 0;
  uint64_t tuples_emitted_ = 0;
  bool done_ = false;
};

/// Materialized convenience for tests / small runs.
std::vector<TimedElement> GenerateTraffic(const TrafficConfig& config);

/// Probe-vehicle schema: (vehicle, segment, timestamp, speed).
SchemaPtr ProbeSchema();
inline constexpr int kProbeVehicle = 0;
inline constexpr int kProbeSegment = 1;
inline constexpr int kProbeTimestamp = 2;
inline constexpr int kProbeSpeed = 3;

struct ProbeConfig {
  int num_segments = 9;
  int num_vehicles = 25;
  TimeMs report_every_ms = 4'000;  // per-vehicle report cadence
  TimeMs duration_ms = 600'000;
  double noise_stddev = 5.0;
  TimeMs punct_every_ms = 60'000;
  // Fraction of windows with no probe coverage at all (THRIFTY JOIN's
  // empty windows): vehicles cluster, leaving some segments bare.
  double coverage = 0.6;  // probability a (segment, minute) has probes
  // Fleet-wide GPS outages: every `outage_period_min` minutes the
  // probe stream goes completely dark for `outage_len_min` minutes —
  // deterministic empty windows for THRIFTY JOIN. 0 = no outages.
  int outage_period_min = 0;
  int outage_len_min = 0;
  uint64_t seed = 1234;
};

/// Materialized probe stream, arrival-ordered, punctuated.
std::vector<TimedElement> GenerateProbes(const ProbeConfig& config,
                                         const TrafficGen* truth = nullptr);

}  // namespace nstream

#endif  // NSTREAM_WORKLOAD_TRAFFIC_H_
