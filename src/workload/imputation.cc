#include "workload/imputation.h"

#include <algorithm>

#include "common/rng.h"

namespace nstream {

SchemaPtr ImputationSchema() {
  static SchemaPtr schema = Schema::Make({
      {"detector", ValueType::kInt64},
      {"timestamp", ValueType::kTimestamp},
      {"speed", ValueType::kDouble},
      {"imputed", ValueType::kInt64},
  });
  return schema;
}

std::vector<TimedElement> GenerateImputationStream(
    const ImputationConfig& config) {
  Rng rng(config.seed);
  std::vector<TimedElement> out;
  out.reserve(static_cast<size_t>(config.num_tuples) +
              static_cast<size_t>(config.num_tuples) *
                  static_cast<size_t>(config.inter_arrival_ms) /
                  std::max<TimeMs>(1, config.punct_every_ms));
  TimeMs last_punct = 0;
  for (int i = 0; i < config.num_tuples; ++i) {
    TimeMs ts = static_cast<TimeMs>(i) * config.inter_arrival_ms;
    bool dirty = config.alternate
                     ? (i % 2 == 1)
                     : rng.NextBernoulli(config.dirty_fraction);
    Tuple t;
    t.Append(Value::Int64(static_cast<int64_t>(
        rng.NextBounded(static_cast<uint64_t>(config.num_detectors)))));
    t.Append(Value::Timestamp(ts));
    if (dirty) {
      t.Append(Value::Null());
    } else {
      t.Append(Value::Double(std::max(
          1.0, config.clean_speed_mph +
                   rng.NextGaussian(0, config.noise_stddev))));
    }
    t.Append(Value::Int64(0));
    t.set_id(i + 1);
    out.push_back(TimedElement::OfTuple(ts, std::move(t)));

    if (ts - last_punct >= config.punct_every_ms) {
      PunctPattern p = PunctPattern::AllWildcard(4);
      p = p.With(kImpTimestamp, AttrPattern::Le(Value::Timestamp(ts)));
      out.push_back(TimedElement::OfPunct(ts, Punctuation(std::move(p))));
      last_punct = ts;
    }
  }
  return out;
}

}  // namespace nstream
