// Viewer: the event-driven feedback source of Experiment 2 — an
// on-board navigation display showing one freeway segment at a time,
// switching segments every few minutes. On each switch it issues
// assumed punctuation for the *other* segments over the upcoming
// interval:  ¬[[T .. T+interval), ≠visible, *].
//
// Bounding the pattern by the window-end interval keeps the feedback
// final (no retractions, §4.4) and supportable: window_end is a
// delimited attribute, so guards installed for it expire as windows
// close.

#ifndef NSTREAM_WORKLOAD_VIEWER_H_
#define NSTREAM_WORKLOAD_VIEWER_H_

#include "ops/sink.h"

namespace nstream {

struct ViewerConfig {
  int num_segments = 9;
  // The viewer looks at segment ((t / switch_every_ms) % num_segments).
  TimeMs switch_every_ms = 120'000;
  // Output-schema positions in the aggregate's (window_end, segment,
  // avg) layout.
  int window_end_attr = 0;
  int segment_attr = 1;
  int out_arity = 3;
  // The aggregate's window range; a window belongs to the viewer
  // interval containing its START (it displays that interval's data).
  TimeMs window_range_ms = 60'000;
};

/// Build the sink driver implementing the viewer. Driven by data time
/// (the window_end of arriving results), so runs are deterministic.
CollectorSink::FeedbackDriver MakeViewerDriver(ViewerConfig config);

/// Which segment is visible at data time `t`.
inline int VisibleSegmentAt(const ViewerConfig& config, TimeMs t) {
  return static_cast<int>((t / config.switch_every_ms) %
                          config.num_segments);
}

}  // namespace nstream

#endif  // NSTREAM_WORKLOAD_VIEWER_H_
