// Small string helpers shared across modules (formatting punctuation,
// CSV emission for figure data, test diagnostics).

#ifndef NSTREAM_COMMON_STRING_UTIL_H_
#define NSTREAM_COMMON_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace nstream {

/// Join `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts,
                 std::string_view sep);

/// Split on a single-character delimiter; keeps empty fields.
std::vector<std::string> Split(std::string_view s, char delim);

/// Strip ASCII whitespace from both ends.
std::string_view Trim(std::string_view s);

/// Format a double with fixed precision, locale-independent.
std::string FormatDouble(double v, int precision = 3);

/// printf-style formatting into std::string.
std::string StringPrintf(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

}  // namespace nstream

#endif  // NSTREAM_COMMON_STRING_UTIL_H_
