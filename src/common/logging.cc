#include "common/logging.h"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace nstream {
namespace {

std::atomic<int> g_level{static_cast<int>(LogLevel::kWarn)};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace:
      return "TRACE";
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kFatal:
      return "FATAL";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}

// Serializes interleaved log lines from operator threads.
std::mutex& LogMutex() {
  static std::mutex mu;
  return mu;
}

}  // namespace

void SetLogLevel(LogLevel level) {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  const char* base = file;
  for (const char* p = file; *p; ++p) {
    if (*p == '/') base = p + 1;
  }
  stream_ << "[" << LevelName(level) << " " << base << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  {
    std::lock_guard<std::mutex> lock(LogMutex());
    std::fprintf(stderr, "%s\n", stream_.str().c_str());
  }
  if (level_ == LogLevel::kFatal) {
    std::abort();
  }
}

}  // namespace internal
}  // namespace nstream
