#include "common/status.h"

namespace nstream {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kUnsupported:
      return "Unsupported";
    case StatusCode::kSchemaMismatch:
      return "SchemaMismatch";
    case StatusCode::kUnsafe:
      return "Unsafe";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kCancelled:
      return "Cancelled";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  out += ": ";
  out += msg_;
  return out;
}

}  // namespace nstream
