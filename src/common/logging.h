// Minimal leveled logging with a process-global threshold. Used for
// diagnostics only; the hot data path never logs unconditionally.

#ifndef NSTREAM_COMMON_LOGGING_H_
#define NSTREAM_COMMON_LOGGING_H_

#include <cstdlib>
#include <sstream>
#include <string>

namespace nstream {

enum class LogLevel : int {
  kTrace = 0,
  kDebug = 1,
  kInfo = 2,
  kWarn = 3,
  kError = 4,
  kFatal = 5,
  kOff = 6,
};

/// Process-global log threshold; messages below it are discarded.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();  // emits to stderr; aborts on kFatal

  template <typename T>
  LogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// Sink for disabled log statements; swallows everything.
class NullLog {
 public:
  template <typename T>
  NullLog& operator<<(const T&) {
    return *this;
  }
};

}  // namespace internal
}  // namespace nstream

#define NSTREAM_LOG_ENABLED(lvl) \
  (static_cast<int>(lvl) >= static_cast<int>(::nstream::GetLogLevel()))

#define NSTREAM_LOG(lvl)                                              \
  if (!NSTREAM_LOG_ENABLED(::nstream::LogLevel::lvl))                 \
    ;                                                                 \
  else                                                                \
    ::nstream::internal::LogMessage(::nstream::LogLevel::lvl,         \
                                    __FILE__, __LINE__)

// Invariant checks that stay on in release builds (database-style
// defensive programming: a broken invariant must not corrupt results).
#define NSTREAM_CHECK(cond)                                           \
  if (cond)                                                           \
    ;                                                                 \
  else                                                                \
    ::nstream::internal::LogMessage(::nstream::LogLevel::kFatal,      \
                                    __FILE__, __LINE__)               \
        << "Check failed: " #cond " "

#define NSTREAM_DCHECK(cond) assert(cond)

#endif  // NSTREAM_COMMON_LOGGING_H_
