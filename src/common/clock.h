// Clocks. The engine distinguishes three notions of time, following the
// out-of-order-processing literature the paper builds on:
//   * application time  — the timestamp attribute inside tuples;
//   * system time       — when an element moves through the engine. Under
//                         the discrete-event SimExecutor this is virtual
//                         (deterministic); under the threaded executor it
//                         is wall-clock;
//   * wall time         — host clock, used only by benchmarks.

#ifndef NSTREAM_COMMON_CLOCK_H_
#define NSTREAM_COMMON_CLOCK_H_

#include <chrono>
#include <cstdint>

namespace nstream {

/// Milliseconds since an arbitrary epoch. All engine time is int64 ms.
using TimeMs = int64_t;

/// Abstract system-time source handed to operators via ExecContext.
class Clock {
 public:
  virtual ~Clock() = default;
  virtual TimeMs NowMs() const = 0;
};

/// Deterministic clock owned and advanced by the SimExecutor.
class VirtualClock final : public Clock {
 public:
  explicit VirtualClock(TimeMs start = 0) : now_(start) {}

  TimeMs NowMs() const override { return now_; }

  /// Advance to `t`; time never moves backwards.
  void AdvanceTo(TimeMs t) {
    if (t > now_) now_ = t;
  }

 private:
  TimeMs now_;
};

/// Wall-clock time (steady), used by the threaded executor.
class WallClock final : public Clock {
 public:
  WallClock()
      : start_(std::chrono::steady_clock::now()) {}

  TimeMs NowMs() const override {
    auto d = std::chrono::steady_clock::now() - start_;
    return std::chrono::duration_cast<std::chrono::milliseconds>(d).count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace nstream

#endif  // NSTREAM_COMMON_CLOCK_H_
