// Deterministic pseudo-random number generation for workload synthesis.
// Every generator in src/workload takes an explicit seed so experiments
// are exactly reproducible across runs and platforms (we avoid
// std::uniform_*_distribution, whose output is implementation-defined).

#ifndef NSTREAM_COMMON_RNG_H_
#define NSTREAM_COMMON_RNG_H_

#include <cmath>
#include <cstdint>

namespace nstream {

/// SplitMix64: tiny, fast, well-distributed; used both directly and to
/// seed derived streams. Reference: Steele et al., "Fast Splittable
/// Pseudorandom Number Generators" (OOPSLA 2014).
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL) : state_(seed) {}

  /// Next raw 64-bit value.
  uint64_t Next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform in [0, n). n must be > 0.
  uint64_t NextBounded(uint64_t n) {
    // Multiply-shift rejection-free mapping (Lemire). Slight bias is
    // irrelevant for workload synthesis.
    return static_cast<uint64_t>(
        (static_cast<unsigned __int128>(Next()) * n) >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t NextInt(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(
                    NextBounded(static_cast<uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double NextDouble(double lo, double hi) {
    return lo + (hi - lo) * NextDouble();
  }

  /// true with probability p.
  bool NextBernoulli(double p) { return NextDouble() < p; }

  /// Standard normal via Box-Muller (deterministic, no cached spare).
  double NextGaussian() {
    double u1 = NextDouble();
    double u2 = NextDouble();
    if (u1 < 1e-300) u1 = 1e-300;
    return std::sqrt(-2.0 * std::log(u1)) *
           std::cos(6.283185307179586 * u2);
  }

  double NextGaussian(double mean, double stddev) {
    return mean + stddev * NextGaussian();
  }

  /// Derive an independent child stream (e.g. one per detector).
  Rng Split() { return Rng(Next() ^ 0xd1b54a32d192ed03ULL); }

 private:
  uint64_t state_;
};

}  // namespace nstream

#endif  // NSTREAM_COMMON_RNG_H_
