// Status and Result<T>: exception-free error handling for the nstream
// library, following the Arrow/RocksDB idiom. All fallible public APIs
// return Status (or Result<T> when they produce a value).

#ifndef NSTREAM_COMMON_STATUS_H_
#define NSTREAM_COMMON_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace nstream {

/// Error categories used across the library.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,   // caller passed something malformed
  kNotFound,          // lookup miss (attribute, operator, group)
  kOutOfRange,        // index / window id outside valid bounds
  kAlreadyExists,     // duplicate registration
  kFailedPrecondition,// call sequence violated (e.g. Emit before Open)
  kUnsupported,       // operation not supported by this operator/pattern
  kSchemaMismatch,    // tuple/pattern arity or type disagrees with schema
  kUnsafe,            // propagation would violate safety (Definition 2)
  kResourceExhausted, // queue/capacity limits
  kInternal,          // invariant broken inside the library
  kCancelled,         // execution stopped by shutdown
  kDeadlineExceeded,  // a bounded wait expired (stall watchdog)
};

/// Human-readable name of a StatusCode (e.g. "InvalidArgument").
const char* StatusCodeName(StatusCode code);

/// A success-or-error value. Cheap to copy in the success case (no
/// allocation); error case carries a message.
///
/// [[nodiscard]]: silently dropping a Status is how broken invariants
/// (a failed restore, an ignored checkpoint error) turn into corrupt
/// state three calls later — every ignored return is a compiler
/// warning. Call sites that genuinely don't care must say so with a
/// cast-to-void (or better, log the failure).
class [[nodiscard]] Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string msg)
      : code_(code), msg_(std::move(msg)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Unsupported(std::string msg) {
    return Status(StatusCode::kUnsupported, std::move(msg));
  }
  static Status SchemaMismatch(std::string msg) {
    return Status(StatusCode::kSchemaMismatch, std::move(msg));
  }
  static Status Unsafe(std::string msg) {
    return Status(StatusCode::kUnsafe, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return msg_; }

  bool IsInvalidArgument() const {
    return code_ == StatusCode::kInvalidArgument;
  }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsUnsupported() const { return code_ == StatusCode::kUnsupported; }
  bool IsSchemaMismatch() const {
    return code_ == StatusCode::kSchemaMismatch;
  }
  bool IsUnsafe() const { return code_ == StatusCode::kUnsafe; }
  bool IsCancelled() const { return code_ == StatusCode::kCancelled; }
  bool IsDeadlineExceeded() const {
    return code_ == StatusCode::kDeadlineExceeded;
  }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string msg_;
};

/// A value-or-error, analogous to arrow::Result. The value is only
/// accessible when status().ok().
template <typename T>
class Result {
 public:
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result(Status) requires an error status");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& MoveValue() {
    assert(ok());
    return std::move(*value_);
  }
  /// Value if ok, otherwise the provided default.
  T ValueOr(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  std::optional<T> value_;
  Status status_;
};

}  // namespace nstream

/// Propagate a non-OK Status to the caller.
#define NSTREAM_RETURN_NOT_OK(expr)            \
  do {                                         \
    ::nstream::Status _st = (expr);            \
    if (!_st.ok()) return _st;                 \
  } while (false)

#define NSTREAM_INTERNAL_CONCAT_IMPL(a, b) a##b
#define NSTREAM_INTERNAL_CONCAT(a, b) NSTREAM_INTERNAL_CONCAT_IMPL(a, b)

#define NSTREAM_INTERNAL_ASSIGN_OR_RETURN(var, lhs, rexpr) \
  auto var = (rexpr);                                      \
  if (!var.ok()) return var.status();                      \
  lhs = var.MoveValue()

/// Assign from a Result<T> or propagate its error.
#define NSTREAM_ASSIGN_OR_RETURN(lhs, rexpr)                       \
  NSTREAM_INTERNAL_ASSIGN_OR_RETURN(                               \
      NSTREAM_INTERNAL_CONCAT(_nstream_res_, __LINE__), lhs, rexpr)

#endif  // NSTREAM_COMMON_STATUS_H_
