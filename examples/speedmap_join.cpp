// The paper's motivating scenario (Fig. 1b): a traffic operations
// center builds a speed map from fixed sensors OUTER-JOINed with
// cleaned, aggregated probe-vehicle data — but vehicle readings only
// matter for congested segments (sensor speed < 45 MPH).
//
//   sensors  -> AVG(segment,1min) ---------------.
//                                                  LEFT OUTER JOIN  -> map
//   vehicles -> CLEAN -> AVG(segment,1min) -------/   (gate: <45 MPH)
//
// The join's adaptive gate discovers uncongested (segment, window)
// pairs and sends assumed feedback to the vehicle branch, so cleaning
// and aggregation for those segments is skipped — the exact waste the
// introduction calls out.

#include <cstdio>

#include "common/logging.h"
#include "exec/sync_executor.h"
#include "ops/select.h"
#include "ops/sink.h"
#include "ops/symmetric_hash_join.h"
#include "ops/vector_source.h"
#include "ops/window_aggregate.h"
#include "workload/traffic.h"

using namespace nstream;

namespace {

struct BuiltPlan {
  QueryPlan plan;
  Select* clean = nullptr;
  WindowAggregate* vehicle_avg = nullptr;
  SymmetricHashJoin* join = nullptr;
  CollectorSink* sink = nullptr;
};

void Build(BuiltPlan* out, bool adaptive_feedback) {
  TrafficConfig sensor_config;
  sensor_config.num_segments = 6;
  sensor_config.detectors_per_segment = 8;
  sensor_config.duration_ms = 30 * 60'000;
  sensor_config.punct_every_ms = 60'000;
  TrafficGen truth(sensor_config);

  ProbeConfig probe_config;
  probe_config.num_segments = 6;
  probe_config.num_vehicles = 40;
  probe_config.duration_ms = sensor_config.duration_ms;
  probe_config.coverage = 0.95;

  auto* sensors = out->plan.AddOp(std::make_unique<VectorSource>(
      "sensors", DetectorSchema(), GenerateTraffic(sensor_config)));
  auto* vehicles = out->plan.AddOp(std::make_unique<VectorSource>(
      "vehicles", ProbeSchema(),
      GenerateProbes(probe_config, &truth)));

  WindowAggregateOptions savg;
  savg.ts_attr = kDetTimestamp;
  savg.group_attrs = {kDetSegment};
  savg.agg_attr = kDetSpeed;
  savg.kind = AggKind::kAvg;
  savg.window = {60'000, 60'000};
  auto* sensor_avg = out->plan.AddOp(
      std::make_unique<WindowAggregate>("sensor-avg", savg));

  // CLEAN: drop noisy probe readings (speed must be plausible).
  out->clean = out->plan.AddOp(Select::FromPattern(
      "clean",
      PunctPattern::AllWildcard(4).With(
          kProbeSpeed, AttrPattern::Range(Value::Double(1),
                                          Value::Double(100)))));
  WindowAggregateOptions vavg;
  vavg.ts_attr = kProbeTimestamp;
  vavg.group_attrs = {kProbeSegment};
  vavg.agg_attr = kProbeSpeed;
  vavg.kind = AggKind::kAvg;
  vavg.window = {60'000, 60'000};
  out->vehicle_avg = out->plan.AddOp(
      std::make_unique<WindowAggregate>("vehicle-avg", vavg));

  // Outer join sensor averages with vehicle averages on
  // (window_end, segment); sensor side output: (window_end, segment,
  // avg_speed) — attrs 0,1 are the keys, 0 doubles as the timestamp.
  JoinOptions jopt;
  jopt.left_keys = {0, 1};
  jopt.right_keys = {0, 1};
  jopt.left_ts = 0;
  jopt.right_ts = 0;
  jopt.window_join = true;
  jopt.window = {60'000, 60'000};
  jopt.left_outer = true;
  jopt.left_gate = [](const Tuple& t) {
    Result<double> speed = t.value(2).AsDouble();
    return speed.ok() && speed.value() < 45.0;  // congested: join
  };
  jopt.gate_feedback_horizon = adaptive_feedback ? 3 : 0;
  out->join = out->plan.AddOp(
      std::make_unique<SymmetricHashJoin>("speedmap-join", jopt));

  out->sink = out->plan.AddOp(std::make_unique<CollectorSink>(
      "map", CollectorSinkOptions{.record_tuples = false}));

  NSTREAM_CHECK(out->plan.Connect(*sensors, *sensor_avg).ok());
  NSTREAM_CHECK(out->plan.Connect(*vehicles, *out->clean).ok());
  NSTREAM_CHECK(
      out->plan.Connect(*out->clean, *out->vehicle_avg).ok());
  NSTREAM_CHECK(
      out->plan.Connect(*sensor_avg, 0, *out->join, 0).ok());
  NSTREAM_CHECK(
      out->plan.Connect(*out->vehicle_avg, 0, *out->join, 1).ok());
  NSTREAM_CHECK(out->plan.Connect(*out->join, *out->sink).ok());
}

void RunOnce(bool adaptive_feedback) {
  BuiltPlan built;
  Build(&built, adaptive_feedback);
  SyncExecutor exec;
  Status st = exec.Run(&built.plan);
  NSTREAM_CHECK(st.ok()) << st.ToString();

  std::printf("--- %s ---\n",
              adaptive_feedback ? "adaptive gate feedback ON"
                                : "feedback OFF");
  std::printf(
      "  map rows: %llu   vehicle readings cleaned: %llu   vehicle "
      "agg updates: %llu\n",
      static_cast<unsigned long long>(built.sink->consumed()),
      static_cast<unsigned long long>(built.clean->stats().tuples_out),
      static_cast<unsigned long long>(
          built.vehicle_avg->updates_applied()));
  if (adaptive_feedback) {
    std::printf(
        "  join issued %llu gate feedbacks; vehicle-avg dropped %llu "
        "updates via guards and relayed feedback to CLEAN, which "
        "dropped %llu readings unprocessed\n",
        static_cast<unsigned long long>(built.join->gate_feedbacks()),
        static_cast<unsigned long long>(
            built.vehicle_avg->stats().input_guard_drops),
        static_cast<unsigned long long>(
            built.clean->stats().input_guard_drops));
  }
  std::printf("\n");
}

}  // namespace

int main() {
  std::printf(
      "Speed-map join (paper Fig. 1b): vehicle data is only needed "
      "for congested segments.\n\n");
  RunOnce(false);
  RunOnce(true);
  std::printf(
      "With the adaptive gate, the join discovers uncongested "
      "(segment, window) pairs and pushes assumed punctuation down "
      "the vehicle branch: cleaning + aggregation for those subsets "
      "never runs.\n");
  return 0;
}
