// Supportability (§4.4): feedback is only worth installing when the
// stream's punctuation scheme can eventually reclaim the guard state
// it creates. The auction stream punctuates timestamps (progressing)
// and auction ids (finite lifetimes) but never bid amounts — so:
//
//   "ignore bids before 1pm"            -> supportable (timestamp)
//   "ignore bidder 2 in auction 4"      -> flagged (bidder undelimited)
//   "ignore bids over $1"               -> unsupportable (amount)
//
// The example checks each candidate against the scheme, installs the
// supportable one, and shows its guard being reclaimed by punctuation.

#include <cstdio>

#include "common/logging.h"
#include "exec/sync_executor.h"
#include "ops/select.h"
#include "ops/sink.h"
#include "ops/vector_source.h"
#include "punct/pattern_parser.h"
#include "punct/scheme.h"
#include "workload/auction.h"

using namespace nstream;

int main() {
  std::printf("Feedback supportability on a bid stream (paper §4.4)\n");
  std::printf("schema: (auction, bidder, amount, timestamp)\n");
  std::printf("punctuation scheme: auction=finite, timestamp="
              "progressing, bidder/amount=undelimited\n\n");

  PunctScheme scheme = AuctionPunctScheme();
  struct Candidate {
    const char* description;
    const char* feedback;
  };
  Candidate candidates[] = {
      {"ignore bids before t=60s", "~[*,*,*,<=t:60000]"},
      {"ignore bidder 2 in auction 4", "~[4,2,*,*]"},
      {"ignore bids over $1.00", "~[*,*,>1.0,*]"},
  };
  const char* chosen = nullptr;
  for (const Candidate& c : candidates) {
    FeedbackPunctuation fb = ParseFeedback(c.feedback).value();
    SupportabilityReport report = CheckSupportability(fb, scheme);
    std::printf("  %-32s %-18s -> %s\n", c.description, c.feedback,
                report.ToString().c_str());
    if (report.supportable && chosen == nullptr) {
      chosen = c.feedback;
    }
  }
  NSTREAM_CHECK(chosen != nullptr);

  std::printf("\ninstalling the supportable feedback (%s) on a SELECT "
              "over the live stream...\n\n",
              chosen);

  QueryPlan plan;
  AuctionConfig config;
  auto* source = plan.AddOp(std::make_unique<VectorSource>(
      "bids", AuctionSchema(), GenerateAuctionStream(config)));
  auto* select = plan.AddOp(
      Select::FromPattern("bid-filter", PunctPattern::AllWildcard(4)));
  auto sent = std::make_shared<bool>(false);
  std::string feedback_text = chosen;
  auto* sink = plan.AddOp(std::make_unique<CollectorSink>(
      "app", CollectorSinkOptions{.record_tuples = false},
      [sent, feedback_text](const Tuple&, TimeMs)
          -> std::vector<FeedbackPunctuation> {
        if (*sent) return {};
        *sent = true;
        return {ParseFeedback(feedback_text).value()};
      }));
  NSTREAM_CHECK(plan.Connect(*source, *select).ok());
  NSTREAM_CHECK(plan.Connect(*select, *sink).ok());

  SyncExecutor exec;
  Status st = exec.Run(&plan);
  NSTREAM_CHECK(st.ok()) << st.ToString();

  const GuardSet& guards = select->guards();
  std::printf(
      "run complete: %llu bids delivered, %llu suppressed by the "
      "guard.\nguard lifecycle: installed=%llu expired=%llu live=%d "
      "(reclaimed by the t<=60s punctuation passing)\n",
      static_cast<unsigned long long>(sink->consumed()),
      static_cast<unsigned long long>(
          select->stats().input_guard_drops),
      static_cast<unsigned long long>(guards.total_installed()),
      static_cast<unsigned long long>(guards.total_expired()),
      guards.size());
  return guards.size() == 0 ? 0 : 1;
}
