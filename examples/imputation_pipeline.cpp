// Experiment 1 as a narrated example (Example 3 / Figs. 5-6): the
// imputation plan under the discrete-event executor, with and without
// PACE's assumed feedback. Prints the story the paper tells: without
// feedback the imputed branch diverges without bound; with feedback,
// IMPUTE skips already-late work and the branch keeps up.

#include <cstdio>

#include "common/logging.h"
#include "exec/sim_executor.h"
#include "metrics/timeliness.h"
#include "workload/pipelines.h"

using namespace nstream;

namespace {

void Narrate(bool feedback) {
  ImputationPlanConfig config;
  config.stream.num_tuples = 2'000;
  config.impute_cost_ms = 112.0;   // one archival DB query per dirty tuple
  config.tolerance_ms = 5'000;     // PACE's bound on branch divergence
  config.feedback_enabled = feedback;

  ImputationPlan built = BuildImputationPlan(config);
  SimExecutorOptions sim;
  sim.cost.SetDefaultTupleCostMs(0.05);
  SimExecutor exec(sim);
  Status st = exec.Run(built.plan.get());
  NSTREAM_CHECK(st.ok()) << st.ToString();

  TimelinessOptions topt;
  topt.ts_attr = kImpTimestamp;
  topt.flag_attr = kImpFlag;
  topt.tolerance_ms = config.tolerance_ms;
  topt.total_expected_imputed = built.expected_dirty;
  TimelinessReport report =
      AnalyzeTimeliness(built.sink->collected(), topt);

  std::printf("--- %s ---\n", feedback
                                  ? "WITH feedback (PACE -> IMPUTE)"
                                  : "WITHOUT feedback (PACE as UNION)");
  std::printf("  %s\n", report.Summary().c_str());
  if (!report.imputed.empty()) {
    const SeriesPoint& last = report.imputed.back();
    std::printf("  last imputed tuple lagged %.1f s behind the stream\n",
                static_cast<double>(last.lag_ms) / 1000.0);
  }
  if (feedback) {
    std::printf("  PACE issued %llu assumed punctuations; IMPUTE "
                "avoided %llu archival queries and ran %llu\n",
                static_cast<unsigned long long>(
                    built.pace->stats().feedback_sent),
                static_cast<unsigned long long>(
                    built.impute->stats().work_avoided),
                static_cast<unsigned long long>(
                    built.impute->imputations()));
    std::printf("  guards on IMPUTE now: %s\n",
                built.impute->guards().ToString().c_str());
  }
  std::printf("\n");
}

}  // namespace

int main() {
  std::printf(
      "Imputation pipeline (paper Example 3, Figs. 5-6)\n"
      "plan: DUPLICATE -> sigma_C | sigma_notC -> IMPUTE -> PACE -> "
      "app\n"
      "dirty tuples need a 112 ms archival lookup but arrive every "
      "80 ms: the branch cannot keep up.\n\n");
  Narrate(false);
  Narrate(true);
  std::printf(
      "The feedback run drops a bounded fraction of imputed tuples "
      "(the ones that were already too late) instead of letting every "
      "imputed tuple fall behind: exactly Fig. 5 vs Fig. 6.\n");
  return 0;
}
