// THRIFTY JOIN (§3.3, "Adaptive"): probe-vehicle data is sparse — many
// (segment, minute) windows contain no probe at all. When punctuation
// reveals such an empty window, the join tells the sensor branch to
// stop producing tuples for it: those tuples could never join.
// Also demonstrates IMPATIENT JOIN (§3.4): desired punctuation asking
// the other input to prioritize subsets the join can already use.

#include <cstdio>

#include "common/logging.h"
#include "exec/sim_executor.h"
#include "ops/select.h"
#include "ops/sink.h"
#include "ops/symmetric_hash_join.h"
#include "ops/vector_source.h"
#include "workload/traffic.h"

using namespace nstream;

namespace {

void RunOnce(bool thrifty, bool impatient) {
  TrafficConfig sensor_config;
  sensor_config.num_segments = 6;
  sensor_config.detectors_per_segment = 5;
  sensor_config.duration_ms = 20 * 60'000;
  sensor_config.punct_every_ms = 60'000;
  // Sensors lag slightly so probe punctuation can beat sensor data to
  // the join (otherwise there is nothing left to suppress).
  sensor_config.ooo_jitter_ms = 90'000;

  ProbeConfig probe_config;
  probe_config.num_segments = 6;
  probe_config.num_vehicles = 12;
  probe_config.duration_ms = sensor_config.duration_ms;
  probe_config.coverage = 0.9;
  probe_config.outage_period_min = 7;  // fleet outage: minutes 0-2 of
  probe_config.outage_len_min = 3;     // every 7 -> empty windows

  QueryPlan plan;
  // Probe side is the LEFT / thrifty-probe input.
  auto* probes = plan.AddOp(std::make_unique<VectorSource>(
      "probes", ProbeSchema(), GenerateProbes(probe_config)));
  auto* sensors = plan.AddOp(std::make_unique<VectorSource>(
      "sensors", DetectorSchema(),
      GenerateTraffic(sensor_config)));

  // A pass-through select on the sensor branch stands in for the
  // sensor-side processing the feedback will save.
  auto* sensor_work = plan.AddOp(Select::FromPattern(
      "sensor-work", PunctPattern::AllWildcard(4)));

  JoinOptions jopt;
  jopt.left_keys = {kProbeSegment};     // probe.segment
  jopt.right_keys = {kDetSegment};      // detector.segment
  jopt.left_ts = kProbeTimestamp;
  jopt.right_ts = kDetTimestamp;
  jopt.window_join = true;
  jopt.window = {60'000, 60'000};
  jopt.thrifty = thrifty;
  jopt.thrifty_probe_input = 0;
  jopt.impatient = impatient;
  jopt.impatient_data_input = 0;
  auto* join = plan.AddOp(
      std::make_unique<SymmetricHashJoin>("vehicle-sensor-join", jopt));

  auto* sink = plan.AddOp(std::make_unique<CollectorSink>(
      "sink", CollectorSinkOptions{.record_tuples = false}));

  NSTREAM_CHECK(plan.Connect(*probes, 0, *join, 0).ok());
  NSTREAM_CHECK(plan.Connect(*sensors, *sensor_work).ok());
  NSTREAM_CHECK(plan.Connect(*sensor_work, 0, *join, 1).ok());
  NSTREAM_CHECK(plan.Connect(*join, *sink).ok());

  SimExecutorOptions sim;
  sim.cost.SetDefaultTupleCostMs(0.02);
  SimExecutor exec(sim);
  Status st = exec.Run(&plan);
  NSTREAM_CHECK(st.ok()) << st.ToString();

  std::printf("--- thrifty=%s impatient=%s ---\n",
              thrifty ? "on" : "off", impatient ? "on" : "off");
  std::printf(
      "  join results: %llu   sensor tuples that reached the join: "
      "%llu\n",
      static_cast<unsigned long long>(sink->consumed()),
      static_cast<unsigned long long>(join->stats().tuples_in));
  if (thrifty) {
    std::printf(
        "  empty probe windows detected -> %llu assumed feedbacks; "
        "%llu sensor tuples suppressed before the join (queue purge) "
        "and %llu at sensor-work's guard\n",
        static_cast<unsigned long long>(join->thrifty_feedbacks()),
        static_cast<unsigned long long>(join->stats().work_avoided),
        static_cast<unsigned long long>(
            sensor_work->stats().input_guard_drops));
  }
  if (impatient) {
    std::printf(
        "  desired punctuations sent to prioritize matching sensor "
        "data: %llu\n",
        static_cast<unsigned long long>(join->impatient_feedbacks()));
  }
  std::printf("\n");
}

}  // namespace

int main() {
  std::printf("THRIFTY / IMPATIENT JOIN (paper §3.3-§3.4)\n\n");
  RunOnce(false, false);
  RunOnce(true, false);
  RunOnce(true, true);
  std::printf(
      "Thrifty feedback suppresses sensor tuples for windows the "
      "probe stream has already punctuated as empty; the join result "
      "is unchanged because those tuples could never join.\n");
  return 0;
}
