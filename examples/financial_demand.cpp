// Demanded punctuation (§3.4): a currency speculator needs a trend
// estimate within seconds — a partial answer now beats a complete
// answer too late. The demanded punctuation ![...] makes the windowed
// aggregate unblock and emit its current partial for the demanded
// subset immediately, without waiting for the window to close.

#include <cstdio>

#include "common/logging.h"
#include "exec/sync_executor.h"
#include "ops/sink.h"
#include "ops/vector_source.h"
#include "ops/window_aggregate.h"
#include "punct/pattern_parser.h"

using namespace nstream;

namespace {

SchemaPtr RateSchema() {
  return Schema::Make({{"pair", ValueType::kInt64},  // currency pair id
                       {"timestamp", ValueType::kTimestamp},
                       {"rate", ValueType::kDouble}});
}

std::vector<TimedElement> MakeRates() {
  std::vector<TimedElement> out;
  // Three minutes of quotes for 3 currency pairs, 1-minute windows,
  // with punctuation at each minute boundary.
  TimeMs last_punct = 0;
  for (int i = 0; i < 360; ++i) {
    TimeMs ts = i * 500;
    for (int pair = 0; pair < 3; ++pair) {
      out.push_back(TimedElement::OfTuple(
          ts, TupleBuilder()
                  .I64(pair)
                  .Ts(ts)
                  .D(1.0 + 0.002 * pair + 0.0001 * i)
                  .Build()));
    }
    if (ts - last_punct >= 60'000) {
      out.push_back(TimedElement::OfPunct(
          ts, Punctuation(PunctPattern::AllWildcard(3).With(
                  1, AttrPattern::Le(Value::Timestamp(ts))))));
      last_punct = ts;
    }
  }
  return out;
}

}  // namespace

int main() {
  std::printf(
      "Demanded punctuation (paper §3.4): \"I need this subset NOW; "
      "a partial result is fine.\"\n\n");

  QueryPlan plan;
  auto* source = plan.AddOp(std::make_unique<VectorSource>(
      "quotes", RateSchema(), MakeRates()));

  WindowAggregateOptions agg;
  agg.ts_attr = 1;
  agg.group_attrs = {0};
  agg.agg_attr = 2;
  agg.kind = AggKind::kAvg;
  agg.window = {60'000, 60'000};  // 1-minute trend average
  auto* avg =
      plan.AddOp(std::make_unique<WindowAggregate>("trend", agg));

  // The speculator: once the first minute's results land, their
  // margin of action closes — demand the *currently open* window for
  // pair 1 right now: ![*, 1, *] over (window_end, pair, avg_rate).
  auto demanded = std::make_shared<bool>(false);
  auto* sink = plan.AddOp(std::make_unique<CollectorSink>(
      "speculator", CollectorSinkOptions{},
      [demanded](const Tuple&,
                 TimeMs) -> std::vector<FeedbackPunctuation> {
        if (*demanded) return {};
        *demanded = true;
        return {ParseFeedback("![*,1,*]").value()};
      }));

  NSTREAM_CHECK(plan.Connect(*source, *avg).ok());
  NSTREAM_CHECK(plan.Connect(*avg, *sink).ok());

  SyncExecutor exec;
  Status st = exec.Run(&plan);
  NSTREAM_CHECK(st.ok()) << st.ToString();

  std::printf("results received by the speculator (arrival order):\n");
  size_t final_results =
      sink->collected().size() - avg->partials_emitted();
  size_t seen = 0;
  for (const CollectedTuple& c : sink->collected()) {
    ++seen;
    // Partials are the results whose window had not punctuated yet; in
    // this run they are the pair-1 rows that arrive out of window
    // order, immediately after the demand.
    bool looks_early =
        seen > 3 && seen <= 3 + avg->partials_emitted();
    std::printf("  %s%s\n", c.tuple.ToString().c_str(),
                looks_early ? "   <-- early partial (demanded)" : "");
  }
  std::printf(
      "\nAVG emitted %llu partial result(s) ahead of window close in "
      "response to ![*,1,*]; the %zu exact results still arrived as "
      "windows closed (approximate-then-exact, as in CEDR-style "
      "speculation).\n",
      static_cast<unsigned long long>(avg->partials_emitted()),
      final_results);
  return avg->partials_emitted() > 0 ? 0 : 1;
}
