// Quickstart: build a three-operator plan, run it, then run it again
// with assumed feedback injected from the consumer side and watch the
// operator exploit it (guard) and relay it upstream.
//
//   source(readings) -> SELECT(speed >= 0) -> sink
//
// Build & run:   ./examples/quickstart

#include <cstdio>

#include "common/logging.h"
#include "exec/sync_executor.h"
#include "ops/select.h"
#include "ops/sink.h"
#include "ops/vector_source.h"
#include "punct/pattern_parser.h"

using namespace nstream;

namespace {

SchemaPtr ReadingSchema() {
  return Schema::Make({{"segment", ValueType::kInt64},
                       {"timestamp", ValueType::kTimestamp},
                       {"speed", ValueType::kDouble}});
}

std::vector<TimedElement> MakeReadings() {
  std::vector<TimedElement> out;
  for (int i = 0; i < 12; ++i) {
    TimeMs ts = i * 1'000;
    out.push_back(TimedElement::OfTuple(
        ts,
        TupleBuilder().I64(i % 3).Ts(ts).D(40.0 + 2 * i).Build()));
  }
  // Embedded punctuation: "no more readings at or before t=5000".
  out.push_back(TimedElement::OfPunct(
      5'000,
      Punctuation(ParsePattern("[*,<=t:5000,*]").value())));
  return out;
}

int RunOnce(bool with_feedback) {
  QueryPlan plan;
  auto* source = plan.AddOp(std::make_unique<VectorSource>(
      "source", ReadingSchema(), MakeReadings()));
  auto* select = plan.AddOp(Select::FromPattern(
      "quality", ParsePattern("[*,*,>=0]").value()));

  // The consumer decides it only cares about segment 1: it issues the
  // assumed punctuation ¬[1,*,*]... inverted — it IGNORES segment 1.
  CollectorSink::FeedbackDriver driver = nullptr;
  if (with_feedback) {
    auto sent = std::make_shared<bool>(false);
    driver = [sent](const Tuple&,
                    TimeMs) -> std::vector<FeedbackPunctuation> {
      if (*sent) return {};
      *sent = true;
      // "I will ignore everything from segment 1 from now on."
      return {ParseFeedback("~[1,*,*]").value()};
    };
  }
  auto* sink = plan.AddOp(std::make_unique<CollectorSink>(
      "app", CollectorSinkOptions{}, driver));

  NSTREAM_CHECK(plan.Connect(*source, *select).ok());
  NSTREAM_CHECK(plan.Connect(*select, *sink).ok());

  // Small batches/pages so the pipeline genuinely interleaves and the
  // feedback races real in-flight data (the default 128-tuple pages
  // would drain this tiny stream before the feedback lands).
  SyncExecutorOptions opts;
  opts.source_batch = 2;
  opts.queue.page_size = 2;
  SyncExecutor exec(opts);
  Status st = exec.Run(&plan);
  if (!st.ok()) {
    std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
    return 1;
  }

  std::printf("%s run: %llu tuples reached the app\n",
              with_feedback ? "feedback " : "baseline",
              static_cast<unsigned long long>(sink->consumed()));
  for (const CollectedTuple& c : sink->collected()) {
    std::printf("  %s\n", c.tuple.ToString().c_str());
  }
  std::printf("  SELECT dropped %llu tuples via its feedback guard; "
              "relayed %llu feedback messages upstream\n\n",
              static_cast<unsigned long long>(
                  select->stats().input_guard_drops),
              static_cast<unsigned long long>(
                  select->stats().feedback_propagated));
  return 0;
}

}  // namespace

int main() {
  std::printf("nstream quickstart - feedback punctuation 101\n");
  std::printf("plan: source -> SELECT(speed>=0) -> app sink\n\n");
  if (RunOnce(false) != 0) return 1;
  return RunOnce(true);
}
